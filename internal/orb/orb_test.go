package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"legion/internal/loid"
)

// echoArg is a wire-registered test message.
type echoArg struct {
	N int
	S string
}

func init() { RegisterWireType(echoArg{}) }

func newEcho(rt *Runtime) *ServiceObject {
	obj := NewServiceObject(rt.Mint("Echo"))
	obj.Handle("echo", func(_ context.Context, arg any) (any, error) {
		return arg, nil
	})
	obj.Handle("fail", func(_ context.Context, _ any) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	obj.Handle("double", func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(echoArg)
		if !ok {
			return nil, fmt.Errorf("want echoArg, got %T", arg)
		}
		return echoArg{N: a.N * 2, S: a.S + a.S}, nil
	})
	rt.Register(obj)
	return obj
}

func TestLocalCall(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	got, err := rt.Call(context.Background(), obj.LOID(), "double", echoArg{N: 21, S: "ab"})
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(echoArg); g.N != 42 || g.S != "abab" {
		t.Errorf("got %+v", g)
	}
}

func TestLocalCallErrors(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	ctx := context.Background()

	if _, err := rt.Call(ctx, obj.LOID(), "nosuch", nil); !errors.Is(err, ErrNoMethod) {
		t.Errorf("want ErrNoMethod, got %v", err)
	}
	if _, err := rt.Call(ctx, loid.LOID{Domain: "x", Class: "Y", Instance: 9}, "echo", nil); !errors.Is(err, ErrNotBound) {
		t.Errorf("want ErrNotBound, got %v", err)
	}
	if _, err := rt.Call(ctx, loid.Nil, "echo", nil); !errors.Is(err, ErrNotBound) {
		t.Errorf("nil LOID: want ErrNotBound, got %v", err)
	}
	if _, err := rt.Call(ctx, obj.LOID(), "fail", nil); err == nil || err.Error() != "deliberate failure" {
		t.Errorf("want method error, got %v", err)
	}
}

func TestUnregisterThenReactivate(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	ctx := context.Background()
	rt.Unregister(obj.LOID())
	if _, err := rt.Call(ctx, obj.LOID(), "echo", nil); !errors.Is(err, ErrNotBound) {
		t.Fatalf("want ErrNotBound after unregister, got %v", err)
	}
	rt.Register(obj) // reactivation
	if _, err := rt.Call(ctx, obj.LOID(), "echo", echoArg{}); err != nil {
		t.Fatalf("after re-register: %v", err)
	}
}

func TestRemoteCallViaTCP(t *testing.T) {
	server := NewRuntime("uva")
	defer server.Close()
	obj := newEcho(server)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if server.Addr() != addr {
		t.Errorf("Addr() = %q want %q", server.Addr(), addr)
	}

	client := NewRuntime("sdsc")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	got, err := client.Call(context.Background(), obj.LOID(), "double", echoArg{N: 5, S: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if g := got.(echoArg); g.N != 10 || g.S != "xx" {
		t.Errorf("got %+v", g)
	}
}

func TestRemoteErrorsCrossWire(t *testing.T) {
	server := NewRuntime("uva")
	defer server.Close()
	obj := newEcho(server)
	addr, _ := server.ListenAndServe("127.0.0.1:0")

	client := NewRuntime("sdsc")
	defer client.Close()
	client.Bind(obj.LOID(), addr)
	unbound := loid.LOID{Domain: "uva", Class: "Ghost", Instance: 77}
	client.Bind(unbound, addr)
	ctx := context.Background()

	if _, err := client.Call(ctx, obj.LOID(), "nosuch", nil); !errors.Is(err, ErrNoMethod) {
		t.Errorf("want ErrNoMethod over wire, got %v", err)
	}
	if _, err := client.Call(ctx, unbound, "echo", nil); !errors.Is(err, ErrNotBound) {
		t.Errorf("want ErrNotBound over wire, got %v", err)
	}
	_, err := client.Call(ctx, obj.LOID(), "fail", nil)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "deliberate failure" {
		t.Errorf("want RemoteError(deliberate failure), got %v", err)
	}
}

func TestDomainBinding(t *testing.T) {
	server := NewRuntime("uva")
	defer server.Close()
	obj := newEcho(server)
	addr, _ := server.ListenAndServe("127.0.0.1:0")

	client := NewRuntime("sdsc")
	defer client.Close()
	client.BindDomain("uva", addr) // no per-LOID binding
	got, err := client.Call(context.Background(), obj.LOID(), "echo", echoArg{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.(echoArg).N != 1 {
		t.Errorf("got %+v", got)
	}
}

func TestConcurrentRemoteCalls(t *testing.T) {
	server := NewRuntime("uva")
	defer server.Close()
	obj := newEcho(server)
	addr, _ := server.ListenAndServe("127.0.0.1:0")

	client := NewRuntime("sdsc")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := g*1000 + i
				got, err := client.Call(context.Background(), obj.LOID(), "echo", echoArg{N: want})
				if err != nil {
					errs <- err
					return
				}
				if got.(echoArg).N != want {
					errs <- fmt.Errorf("mismatched response: got %d want %d", got.(echoArg).N, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFaultInjection(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	var n atomic.Int64
	rt.SetFaultInjector(func(target loid.LOID, method string) error {
		if method == "echo" && n.Add(1) <= 2 {
			return fmt.Errorf("%w: first calls fail", ErrInjectedFault)
		}
		return nil
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := rt.Call(ctx, obj.LOID(), "echo", nil); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("call %d: want injected fault, got %v", i, err)
		}
	}
	if _, err := rt.Call(ctx, obj.LOID(), "echo", echoArg{}); err != nil {
		t.Fatalf("third call should succeed: %v", err)
	}
	rt.SetFaultInjector(nil)
	if _, err := rt.Call(ctx, obj.LOID(), "echo", echoArg{}); err != nil {
		t.Fatalf("after clearing injector: %v", err)
	}
}

func TestLatencySimulationAndCancellation(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	rt.SetLatency(20*time.Millisecond, 0)

	start := time.Now()
	if _, err := rt.Call(context.Background(), obj.LOID(), "echo", echoArg{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("latency not applied: %v", d)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := rt.Call(ctx, obj.LOID(), "echo", echoArg{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("want deadline exceeded, got %v", err)
	}
}

func TestTracer(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	var mu sync.Mutex
	var calls []string
	rt.SetTracer(func(caller string, target loid.LOID, method string, _ time.Duration, err error) {
		mu.Lock()
		calls = append(calls, fmt.Sprintf("%s->%s.%s err=%v", caller, target.Short(), method, err != nil))
		mu.Unlock()
	})
	ctx := context.Background()
	rt.Call(ctx, obj.LOID(), "echo", echoArg{})
	rt.Call(ctx, obj.LOID(), "fail", nil)
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 {
		t.Fatalf("tracer saw %d calls: %v", len(calls), calls)
	}
	if calls[0] != fmt.Sprintf("uva->%s.echo err=false", obj.LOID().Short()) {
		t.Errorf("trace[0] = %q", calls[0])
	}
	if calls[1] != fmt.Sprintf("uva->%s.fail err=true", obj.LOID().Short()) {
		t.Errorf("trace[1] = %q", calls[1])
	}
}

func TestServerCloseFailsPendingClients(t *testing.T) {
	server := NewRuntime("uva")
	slow := NewServiceObject(server.Mint("Slow"))
	release := make(chan struct{})
	slow.Handle("wait", func(ctx context.Context, _ any) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			// Server shutdown: report the cancellation rather than
			// fabricating a success.
			return nil, ctx.Err()
		}
	})
	server.Register(slow)
	addr, _ := server.ListenAndServe("127.0.0.1:0")

	client := NewRuntime("sdsc")
	defer client.Close()
	client.Bind(slow.LOID(), addr)

	done := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), slow.LOID(), "wait", nil)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the call reach the server
	server.Close()
	close(release)
	select {
	case err := <-done:
		if err == nil {
			t.Error("call should fail when server closes")
		}
	case <-time.After(2 * time.Second):
		t.Error("pending call did not complete after server close")
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	server := NewRuntime("uva")
	obj := newEcho(server)
	addr, _ := server.ListenAndServe("127.0.0.1:0")

	client := NewRuntime("sdsc")
	defer client.Close()
	client.Bind(obj.LOID(), addr)
	ctx := context.Background()

	if _, err := client.Call(ctx, obj.LOID(), "echo", echoArg{N: 1}); err != nil {
		t.Fatal(err)
	}
	server.Close()
	// Calls now fail...
	if _, err := client.Call(ctx, obj.LOID(), "echo", echoArg{N: 2}); err == nil {
		t.Fatal("want failure while server down")
	}
	// ...restart the server on the same address; the client should dial a
	// fresh connection transparently.
	server2 := NewRuntime("uva")
	defer server2.Close()
	server2.Register(obj)
	if _, err := server2.ListenAndServe(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := client.Call(ctx, obj.LOID(), "echo", echoArg{N: 3}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDoubleListenRejected(t *testing.T) {
	rt := NewRuntime("uva")
	defer rt.Close()
	if _, err := rt.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Error("second ListenAndServe should fail")
	}
}

func TestLocalsAndLookup(t *testing.T) {
	rt := NewRuntime("uva")
	a := newEcho(rt)
	b := newEcho(rt)
	ls := rt.Locals()
	if len(ls) != 2 {
		t.Fatalf("Locals = %v", ls)
	}
	if o, ok := rt.Lookup(a.LOID()); !ok || o != a {
		t.Error("Lookup(a) failed")
	}
	if _, ok := rt.Lookup(loid.LOID{Domain: "x", Class: "y", Instance: 1}); ok {
		t.Error("Lookup of unknown LOID succeeded")
	}
	_ = b
}

func TestServiceObjectMethods(t *testing.T) {
	rt := NewRuntime("uva")
	obj := newEcho(rt)
	ms := obj.Methods()
	want := map[string]bool{"echo": true, "fail": true, "double": true}
	if len(ms) != len(want) {
		t.Fatalf("Methods() = %v", ms)
	}
	for _, m := range ms {
		if !want[m] {
			t.Errorf("unexpected method %q", m)
		}
	}
}

func TestRegisterNilLOIDPanics(t *testing.T) {
	rt := NewRuntime("uva")
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	rt.Register(NewServiceObject(loid.Nil))
}
