package orb

import (
	"context"
	"fmt"
	"sync"

	"legion/internal/loid"
)

// Method is one exported method of a ServiceObject.
type Method func(ctx context.Context, arg any) (any, error)

// SharedMethod is a Method whose receiver is bound at dispatch time, so
// one immutable table can serve every instance of a class. recv is the
// value passed to NewSharedServiceObject (typically the embedding
// struct, e.g. *host.Host).
type SharedMethod func(ctx context.Context, recv, arg any) (any, error)

// DispatchTable is a build-once method table shared across all instances
// of a class. At metasystem scale the per-instance method map is the
// dominant per-object allocation (a Host registers ~12 closures, and
// every placed application instance registers several more); a shared
// table replaces 100k copies of that map with one. Populate the table
// fully before handing it to any object — lookups are deliberately
// lock-free and concurrent mutation is a race.
type DispatchTable struct {
	m map[string]SharedMethod
}

// NewDispatchTable creates an empty table.
func NewDispatchTable() *DispatchTable {
	return &DispatchTable{m: make(map[string]SharedMethod)}
}

// Handle registers (or replaces) a method. Not safe to call after the
// table is in use.
func (t *DispatchTable) Handle(name string, m SharedMethod) {
	t.m[name] = m
}

// Methods returns the names of all registered methods.
func (t *DispatchTable) Methods() []string {
	out := make([]string, 0, len(t.m))
	for name := range t.m {
		out = append(out, name)
	}
	return out
}

// ServiceObject is a convenience Object implementation backed by a method
// table. The RMI components (Hosts, Collections, Enactors, ...) embed it
// and register their methods at construction time; tests use it to stand
// up lightweight objects. Classes instantiated at scale (Hosts,
// application instances) instead share one class-wide DispatchTable via
// NewSharedServiceObject; per-instance Handle registrations still work
// and override the shared table.
type ServiceObject struct {
	l      loid.LOID
	shared *DispatchTable
	recv   any
	mu     sync.RWMutex
	m      map[string]Method // lazily allocated; most shared objects never need it
}

// NewServiceObject creates a ServiceObject named l with no methods.
func NewServiceObject(l loid.LOID) *ServiceObject {
	return &ServiceObject{l: l}
}

// NewSharedServiceObject creates a ServiceObject named l dispatching
// through the class-wide table, passing recv to every SharedMethod.
func NewSharedServiceObject(l loid.LOID, table *DispatchTable, recv any) *ServiceObject {
	return &ServiceObject{l: l, shared: table, recv: recv}
}

// BindReceiver sets the value passed to SharedMethods. It exists for
// embedding structs that can only self-reference after construction;
// call it before the object is registered with a runtime.
func (s *ServiceObject) BindReceiver(recv any) { s.recv = recv }

// LOID implements Object.
func (s *ServiceObject) LOID() loid.LOID { return s.l }

// Handle registers (or replaces) a per-instance method, shadowing any
// shared-table method of the same name.
func (s *ServiceObject) Handle(name string, m Method) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]Method)
	}
	s.m[name] = m
}

// Methods returns the names of all registered methods (shared and
// per-instance); useful for the interface-conformance checks in the
// Table 1 reproduction.
func (s *ServiceObject) Methods() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool, len(s.m))
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		seen[name] = true
		out = append(out, name)
	}
	if s.shared != nil {
		for name := range s.shared.m {
			if !seen[name] {
				out = append(out, name)
			}
		}
	}
	return out
}

// Dispatch implements Object.
func (s *ServiceObject) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	s.mu.RLock()
	m, ok := s.m[method]
	s.mu.RUnlock()
	if ok {
		return m(ctx, arg)
	}
	if s.shared != nil {
		if sm, ok := s.shared.m[method]; ok {
			return sm(ctx, s.recv, arg)
		}
	}
	return nil, fmt.Errorf("%w: %q on %v", ErrNoMethod, method, s.l)
}
