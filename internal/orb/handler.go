package orb

import (
	"context"
	"fmt"
	"sync"

	"legion/internal/loid"
)

// Method is one exported method of a ServiceObject.
type Method func(ctx context.Context, arg any) (any, error)

// ServiceObject is a convenience Object implementation backed by a method
// table. The RMI components (Hosts, Collections, Enactors, ...) embed it
// and register their methods at construction time; tests use it to stand
// up lightweight objects.
type ServiceObject struct {
	l  loid.LOID
	mu sync.RWMutex
	m  map[string]Method
}

// NewServiceObject creates a ServiceObject named l with no methods.
func NewServiceObject(l loid.LOID) *ServiceObject {
	return &ServiceObject{l: l, m: make(map[string]Method)}
}

// LOID implements Object.
func (s *ServiceObject) LOID() loid.LOID { return s.l }

// Handle registers (or replaces) a method.
func (s *ServiceObject) Handle(name string, m Method) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = m
}

// Methods returns the names of all registered methods; useful for the
// interface-conformance checks in the Table 1 reproduction.
func (s *ServiceObject) Methods() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	return out
}

// Dispatch implements Object.
func (s *ServiceObject) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	s.mu.RLock()
	m, ok := s.m[method]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q on %v", ErrNoMethod, method, s.l)
	}
	return m(ctx, arg)
}
