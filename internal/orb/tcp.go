package orb

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"legion/internal/loid"
	"legion/internal/telemetry"
)

// RegisterWireType registers a concrete type for transmission inside the
// protocol's `any` argument/result slots. Packages defining message types
// call this from init(); it wraps encoding/gob registration.
func RegisterWireType(v any) { gob.Register(v) }

// request is one method invocation on the wire. TraceID/SpanID carry
// the caller's active telemetry span (zero when the caller has none) so
// the serving runtime's spans parent under it — this is how one
// placement request is followed across runtimes. Deadline carries the
// caller's context deadline (UnixNano; zero when the caller has none):
// the serving runtime reconstructs it as a server-side context deadline,
// so work the caller has already abandoned is cancelled at every hop
// instead of only at the origin.
type request struct {
	ID       uint64
	Target   wireLOID
	Method   string
	Arg      any
	TraceID  uint64
	SpanID   uint64
	Deadline int64
}

// wireLOID mirrors loid.LOID for gob (kept separate so the loid package
// stays transport-agnostic).
type wireLOID struct {
	Domain   string
	Class    string
	Instance uint64
}

// response is the reply to one request.
type response struct {
	ID      uint64
	Result  any
	ErrMsg  string
	ErrKind int // 0 none, 1 generic, 2 not bound, 3 no method, 4 deadline expired
}

const (
	errKindNone = iota
	errKindGeneric
	errKindNotBound
	errKindNoMethod
	errKindDeadline
)

func encodeErr(err error) (int, string) {
	switch {
	case err == nil:
		return errKindNone, ""
	case errors.Is(err, ErrNotBound):
		return errKindNotBound, err.Error()
	case errors.Is(err, ErrNoMethod):
		return errKindNoMethod, err.Error()
	case errors.Is(err, ErrDeadlineExpired):
		return errKindDeadline, err.Error()
	default:
		return errKindGeneric, err.Error()
	}
}

func decodeErr(kind int, msg string) error {
	switch kind {
	case errKindNone:
		return nil
	case errKindNotBound:
		return fmt.Errorf("%w: %s", ErrNotBound, msg)
	case errKindNoMethod:
		return fmt.Errorf("%w: %s", ErrNoMethod, msg)
	case errKindDeadline:
		return fmt.Errorf("%w: %s", ErrDeadlineExpired, msg)
	default:
		return &RemoteError{Msg: msg}
	}
}

// tcpServer accepts connections and serves requests against a Runtime.
type tcpServer struct {
	rt     *Runtime
	ln     net.Listener
	mu     sync.Mutex
	cs     map[net.Conn]struct{}
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// ListenAndServe starts serving this runtime's objects on addr (e.g.
// "127.0.0.1:0"). It returns the bound address. A runtime serves at most
// one listener; calling it twice is an error.
func (rt *Runtime) ListenAndServe(addr string) (string, error) {
	rt.mu.Lock()
	if rt.server != nil {
		rt.mu.Unlock()
		return "", errors.New("orb: runtime already listening")
	}
	rt.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("orb: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &tcpServer{rt: rt, ln: ln, cs: make(map[net.Conn]struct{}), ctx: ctx, cancel: cancel}

	rt.mu.Lock()
	rt.server = s
	rt.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the listener address, or "" if not listening.
func (rt *Runtime) Addr() string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.server == nil {
		return ""
	}
	return rt.server.ln.Addr().String()
}

// Close shuts down the listener, all server connections, and all client
// connections. The runtime's local object table is unaffected.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	s := rt.server
	rt.server = nil
	rt.mu.Unlock()
	if s != nil {
		s.cancel()
		s.ln.Close()
		s.mu.Lock()
		for c := range s.cs {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	}
	// Collect first, close outside clientsMu: each close invokes the
	// eviction hook, which itself takes clientsMu.
	rt.clientsMu.Lock()
	clients := make([]*tcpClient, 0, len(rt.clients))
	for addr, c := range rt.clients {
		clients = append(clients, c)
		delete(rt.clients, addr)
	}
	rt.clientsMu.Unlock()
	for _, c := range clients {
		c.close(errors.New("orb: runtime closed"))
	}
	return nil
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.cs[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.cs, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or protocol error: drop the connection
		}
		reqWG.Add(1)
		go func(req request) {
			defer reqWG.Done()
			target := loidFromWire(req.Target)
			// Re-install the caller's span from the wire metadata and
			// record a server-side span + latency/error observation for
			// this method.
			ctx := telemetry.WithRemoteParent(s.ctx,
				telemetry.SpanContext{TraceID: req.TraceID, SpanID: req.SpanID})
			reg := s.rt.Metrics()
			ctx, span := reg.Spans().StartIn(ctx, "rpc/"+req.Method, s.rt.Domain())
			start := time.Now()
			var res any
			var err error
			if req.Deadline != 0 {
				dl := time.Unix(0, req.Deadline)
				if !dl.After(time.Now()) {
					// The caller abandoned this request before we even
					// dequeued it: refuse without invoking the method so
					// doomed work is shed at every hop, not just at the
					// origin.
					reg.Counter("legion_orb_deadline_expired_total",
						"method", req.Method).Inc()
					err = fmt.Errorf("%w: %s (deadline %s ago)",
						ErrDeadlineExpired, req.Method,
						time.Since(dl).Round(time.Millisecond))
				} else {
					var cancel context.CancelFunc
					ctx, cancel = context.WithDeadline(ctx, dl)
					defer cancel()
				}
			}
			if err == nil {
				res, err = s.rt.Call(ctx, target, req.Method, req.Arg)
			}
			span.Finish(err)
			reg.Histogram("legion_orb_server_seconds", telemetry.LatencyBuckets,
				"method", req.Method).ObserveSince(start)
			if err != nil {
				reg.Counter("legion_orb_server_errors_total", "method", req.Method).Inc()
			}
			kind, msg := encodeErr(err)
			resp := response{ID: req.ID, Result: res, ErrMsg: msg, ErrKind: kind}
			encMu.Lock()
			encodeFailed := enc.Encode(&resp) != nil
			encMu.Unlock()
			if encodeFailed {
				conn.Close()
			}
		}(req)
	}
}

// tcpClient multiplexes calls to one remote runtime over one connection.
type tcpClient struct {
	conn    net.Conn
	enc     *gob.Encoder
	encMu   sync.Mutex
	onClose func(*tcpClient) // eviction hook, run once on first close

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error
}

func dialClient(addr string, onClose func(*tcpClient)) (*tcpClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb: dial %s: %w", addr, err)
	}
	c := &tcpClient{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		onClose: onClose,
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c, nil
}

func (c *tcpClient) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			if err == io.EOF {
				err = errors.New("orb: connection closed by peer")
			}
			c.close(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// close fails all pending calls, marks the client dead, and (once) runs
// the eviction hook so the owning Runtime drops it from the client cache
// — the next call to this address redials instead of failing forever on
// a dead connection.
func (c *tcpClient) close(err error) {
	c.conn.Close()
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- response{ErrKind: errKindGeneric, ErrMsg: c.err.Error()}
	}
	onClose := c.onClose
	c.mu.Unlock()
	// Outside c.mu: the hook takes the Runtime's clientsMu, which other
	// goroutines hold while taking c.mu (lock-order discipline).
	if first && onClose != nil {
		onClose(c)
	}
}

func (c *tcpClient) call(ctx context.Context, req request) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	// Encode on a separate goroutine so a wedged connection (peer not
	// draining, send buffers full) cannot hold the caller past its ctx.
	// If ctx expires while our encode is in flight the connection is
	// unusable — the stream may be cut mid-message — so the whole client
	// is closed; pending calls fail fast and the Runtime's eviction hook
	// forces a redial. But if ctx expires while we are merely QUEUED on
	// encMu behind another caller's encode, nothing of this message has
	// touched the wire: the call is abandoned (the goroutine skips the
	// encode entirely) and the connection stays alive, so one short
	// per-attempt timeout under load cannot cascade into connection-wide
	// failures that feed breakers and liveness with false positives.
	encDone := make(chan error, 1)
	var sendMu sync.Mutex
	sendStarted, sendAbandoned := false, false
	go func() {
		c.encMu.Lock()
		sendMu.Lock()
		if sendAbandoned {
			sendMu.Unlock()
			c.encMu.Unlock()
			return
		}
		sendStarted = true
		sendMu.Unlock()
		err := c.enc.Encode(&req)
		c.encMu.Unlock()
		encDone <- err
	}()
	select {
	case err := <-encDone:
		if err != nil {
			c.mu.Lock()
			delete(c.pending, req.ID)
			c.mu.Unlock()
			c.close(fmt.Errorf("orb: send: %w", err))
			return nil, fmt.Errorf("orb: send: %w", err)
		}
	case <-ctx.Done():
		sendMu.Lock()
		queued := !sendStarted
		if queued {
			sendAbandoned = true
		}
		sendMu.Unlock()
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		if !queued {
			c.close(fmt.Errorf("orb: send aborted: %w", ctx.Err()))
		}
		return nil, ctx.Err()
	}

	// Await the response. On ctx expiry the pending entry is withdrawn
	// (no leak); the connection stays usable — a late response for the
	// withdrawn ID is simply dropped by the read loop.
	select {
	case resp := <-ch:
		return resp.Result, decodeErr(resp.ErrKind, resp.ErrMsg)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// client returns (dialing if necessary) the shared client for addr.
// Dead clients are evicted eagerly by their close hook; the liveness
// check here remains as a backstop against races.
func (rt *Runtime) client(addr string) (*tcpClient, error) {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	if c, ok := rt.clients[addr]; ok {
		c.mu.Lock()
		dead := c.err != nil
		c.mu.Unlock()
		if !dead {
			return c, nil
		}
		delete(rt.clients, addr)
	}
	c, err := dialClient(addr, func(dead *tcpClient) {
		rt.clientsMu.Lock()
		if rt.clients[addr] == dead {
			delete(rt.clients, addr)
		}
		rt.clientsMu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	rt.clients[addr] = c
	return c, nil
}

func (rt *Runtime) callRemote(ctx context.Context, addr string, target loid.LOID, method string, arg any) (any, error) {
	reg := rt.Metrics()
	start := time.Now()
	res, err := rt.callRemoteRaw(ctx, addr, target, method, arg)
	reg.Histogram("legion_orb_client_seconds", telemetry.LatencyBuckets,
		"method", method).ObserveSince(start)
	if err != nil {
		reg.Counter("legion_orb_client_errors_total", "method", method).Inc()
	}
	return res, err
}

func (rt *Runtime) callRemoteRaw(ctx context.Context, addr string, target loid.LOID, method string, arg any) (any, error) {
	c, err := rt.client(addr)
	if err != nil {
		return nil, err
	}
	req := request{
		Target: wireLOID{Domain: target.Domain, Class: target.Class, Instance: target.Instance},
		Method: method,
		Arg:    arg,
	}
	if sc, ok := telemetry.SpanFromContext(ctx); ok {
		req.TraceID, req.SpanID = sc.TraceID, sc.SpanID
	}
	if d, ok := ctx.Deadline(); ok {
		req.Deadline = d.UnixNano()
	}
	return c.call(ctx, req)
}

func loidFromWire(w wireLOID) loid.LOID {
	return loid.LOID{Domain: w.Domain, Class: w.Class, Instance: w.Instance}
}
