package orb

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"legion/internal/fanout"
	"legion/internal/loid"
	"legion/internal/telemetry"
	"legion/internal/wire"
)

// RegisterWireType registers a concrete type for transmission inside the
// protocol's `any` argument/result slots. Packages defining message types
// call this from init(); it wraps encoding/gob registration. Types that
// additionally register a binary encoding (RegisterWireMessage) use it on
// binary connections; everything else crosses as an inline gob blob.
func RegisterWireType(v any) { gob.Register(v) }

// request is one method invocation on the wire. TraceID/SpanID carry
// the caller's active telemetry span (zero when the caller has none) so
// the serving runtime's spans parent under it — this is how one
// placement request is followed across runtimes. Deadline carries the
// caller's context deadline (UnixNano; zero when the caller has none):
// the serving runtime reconstructs it as a server-side context deadline,
// so work the caller has already abandoned is cancelled at every hop
// instead of only at the origin.
type request struct {
	ID       uint64
	Target   wireLOID
	Method   string
	Arg      any
	TraceID  uint64
	SpanID   uint64
	Deadline int64
}

// wireLOID mirrors loid.LOID for gob (kept separate so the loid package
// stays transport-agnostic).
type wireLOID struct {
	Domain   string
	Class    string
	Instance uint64
}

// response is the reply to one request.
type response struct {
	ID      uint64
	Result  any
	ErrMsg  string
	ErrKind int // 0 none, 1 generic, 2 not bound, 3 no method, 4 deadline expired, 5 overload
}

const (
	errKindNone = iota
	errKindGeneric
	errKindNotBound
	errKindNoMethod
	errKindDeadline
	errKindOverload
)

func encodeErr(err error) (int, string) {
	switch {
	case err == nil:
		return errKindNone, ""
	case errors.Is(err, ErrNotBound):
		return errKindNotBound, err.Error()
	case errors.Is(err, ErrNoMethod):
		return errKindNoMethod, err.Error()
	case errors.Is(err, ErrDeadlineExpired):
		return errKindDeadline, err.Error()
	case errors.Is(err, ErrServerOverload):
		return errKindOverload, err.Error()
	default:
		return errKindGeneric, err.Error()
	}
}

func decodeErr(kind int, msg string) error {
	switch kind {
	case errKindNone:
		return nil
	case errKindNotBound:
		return fmt.Errorf("%w: %s", ErrNotBound, msg)
	case errKindNoMethod:
		return fmt.Errorf("%w: %s", ErrNoMethod, msg)
	case errKindDeadline:
		return fmt.Errorf("%w: %s", ErrDeadlineExpired, msg)
	case errKindOverload:
		return fmt.Errorf("%w (remote)", ErrServerOverload)
	default:
		return &RemoteError{Msg: msg}
	}
}

// requestMeta is the codec-independent header of one inbound request.
type requestMeta struct {
	id       uint64
	target   loid.LOID
	method   string
	traceID  uint64
	spanID   uint64
	deadline int64
}

// tcpServer accepts connections and serves requests against a Runtime.
type tcpServer struct {
	rt     *Runtime
	ln     net.Listener
	lim    *fanout.Limiter
	mu     sync.Mutex
	cs     map[net.Conn]struct{}
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

// ListenAndServe starts serving this runtime's objects on addr (e.g.
// "127.0.0.1:0"). It returns the bound address. A runtime serves at most
// one listener; calling it twice is an error.
func (rt *Runtime) ListenAndServe(addr string) (string, error) {
	rt.mu.Lock()
	if rt.server != nil {
		rt.mu.Unlock()
		return "", errors.New("orb: runtime already listening")
	}
	rt.mu.Unlock()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("orb: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &tcpServer{rt: rt, ln: ln, lim: rt.serverLimiter(),
		cs: make(map[net.Conn]struct{}), ctx: ctx, cancel: cancel}

	rt.mu.Lock()
	rt.server = s
	rt.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Addr returns the listener address, or "" if not listening.
func (rt *Runtime) Addr() string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.server == nil {
		return ""
	}
	return rt.server.ln.Addr().String()
}

// Close shuts down the listener, all server connections, and all client
// connections. The runtime's local object table is unaffected.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	s := rt.server
	rt.server = nil
	rt.mu.Unlock()
	if s != nil {
		s.cancel()
		s.ln.Close()
		s.mu.Lock()
		for c := range s.cs {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
	}
	// Collect first, close outside clientsMu: each close invokes the
	// eviction hook, which itself takes clientsMu.
	rt.clientsMu.Lock()
	clients := make([]*tcpClient, 0, len(rt.clients))
	for addr, c := range rt.clients {
		clients = append(clients, c)
		delete(rt.clients, addr)
	}
	rt.clientsMu.Unlock()
	for _, c := range clients {
		c.close(errors.New("orb: runtime closed"))
	}
	return nil
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.cs[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn reads the connection preamble and serves the codec the
// client selected. A bad preamble drops the connection: every legion
// runtime since the binary codec landed sends one, and refusing
// preamble-less streams keeps stray connections from wedging a decoder.
func (s *tcpServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.cs, conn)
		s.mu.Unlock()
	}()
	var pre [preambleLen]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		return
	}
	if pre[0] != preambleMagic0 || pre[1] != preambleMagic1 || pre[2] != preambleVer {
		return
	}
	switch WireCodec(pre[3]) {
	case CodecBinary:
		s.serveBinary(conn)
	case CodecGob:
		s.serveGob(conn)
	}
}

// process runs one decoded request against the runtime: span
// re-parenting, propagated-deadline enforcement, dispatch, server-side
// metrics. Both codecs share it.
func (s *tcpServer) process(meta requestMeta, arg any) (any, error) {
	ctx := telemetry.WithRemoteParent(s.ctx,
		telemetry.SpanContext{TraceID: meta.traceID, SpanID: meta.spanID})
	reg := s.rt.Metrics()
	ctx, span := reg.Spans().StartIn(ctx, "rpc/"+meta.method, s.rt.Domain())
	start := time.Now()
	var res any
	var err error
	if meta.deadline != 0 {
		dl := time.Unix(0, meta.deadline)
		if !dl.After(time.Now()) {
			// The caller abandoned this request before we even dequeued
			// it: refuse without invoking the method so doomed work is
			// shed at every hop, not just at the origin.
			reg.Counter("legion_orb_deadline_expired_total",
				"method", meta.method).Inc()
			err = fmt.Errorf("%w: %s (deadline %s ago)",
				ErrDeadlineExpired, meta.method,
				time.Since(dl).Round(time.Millisecond))
		} else {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, dl)
			defer cancel()
		}
	}
	if err == nil {
		res, err = s.rt.Call(ctx, meta.target, meta.method, arg)
	}
	span.Finish(err)
	reg.Histogram("legion_orb_server_seconds", telemetry.LatencyBuckets,
		"method", meta.method).ObserveSince(start)
	if err != nil {
		reg.Counter("legion_orb_server_errors_total", "method", meta.method).Inc()
	}
	return res, err
}

// shed records and reports a refused frame. The handler pool is full:
// responding immediately (instead of queueing) gives the caller a typed
// permanent refusal its retry policy will not amplify.
func (s *tcpServer) shed(method string) error {
	s.rt.Metrics().Counter("legion_orb_server_overload_total",
		"method", method).Inc()
	return ErrServerOverload
}

// serveGob is the fallback protocol: one gob stream each way, one
// handler goroutine per request, bounded by the server-wide limiter.
func (s *tcpServer) serveGob(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	respond := func(resp response) {
		encMu.Lock()
		encodeFailed := enc.Encode(&resp) != nil
		encMu.Unlock()
		if encodeFailed {
			conn.Close()
		}
	}
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // EOF or protocol error: drop the connection
		}
		meta := requestMeta{id: req.ID, target: loidFromWire(req.Target),
			method: req.Method, traceID: req.TraceID, spanID: req.SpanID,
			deadline: req.Deadline}
		reqWG.Add(1)
		admitted := s.lim.TryGo(func() {
			defer reqWG.Done()
			res, err := s.process(meta, req.Arg)
			kind, msg := encodeErr(err)
			respond(response{ID: meta.id, Result: res, ErrMsg: msg, ErrKind: kind})
		})
		if !admitted {
			reqWG.Done()
			kind, msg := encodeErr(s.shed(meta.method))
			respond(response{ID: meta.id, ErrMsg: msg, ErrKind: kind})
		}
	}
}

// serveBinary is the binary protocol: length-prefixed frames, a
// per-connection method table built as frames arrive, handler
// goroutines bounded by the server-wide limiter, and responses
// coalesced into batched writes.
func (s *tcpServer) serveBinary(conn net.Conn) {
	co := newCoalescer(conn, func(error) { conn.Close() })
	var mt methodTable
	br := bufio.NewReaderSize(conn, 64<<10)
	var body []byte
	var r wire.Reader // reused across frames: warm symbol cache, one allocation per connection
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxFrameLen {
			return
		}
		if uint64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		// Header and payload decode stay on the read loop: method-table
		// updates must apply in frame order, and decoded values never
		// alias body, so the buffer is immediately reusable.
		r.Reset(body)
		meta, err := decodeRequestHeader(&r, &mt)
		if err != nil {
			return // corrupt header: the stream is unrecoverable
		}
		arg, perr := DecodePayload(&r)
		if perr == nil && len(r.B) != 0 {
			perr = fmt.Errorf("orb: request frame has %d trailing bytes", len(r.B))
		}
		if perr != nil {
			// The frame boundary is intact, so the connection survives a
			// bad payload; only this request fails.
			s.respondBinary(co, meta.id, nil, perr)
			continue
		}
		reqWG.Add(1)
		admitted := s.lim.TryGo(func() {
			defer reqWG.Done()
			res, err := s.process(meta, arg)
			s.respondBinary(co, meta.id, res, err)
		})
		if !admitted {
			reqWG.Done()
			s.respondBinary(co, meta.id, nil, s.shed(meta.method))
		}
	}
}

// respondBinary encodes res outside the coalescer lock and appends one
// response frame.
func (s *tcpServer) respondBinary(co *coalescer, id uint64, res any, err error) {
	payload := wire.GetBuf()
	pb, perr := AppendPayload((*payload)[:0], res)
	if perr != nil {
		err = perr
		pb, _ = AppendPayload((*payload)[:0], nil)
	}
	*payload = pb
	kind, msg := encodeErr(err)
	co.append(func(b []byte) []byte {
		return appendResponseFrame(b, &co.scratch, id, kind, msg, *payload)
	})
	wire.PutBuf(payload)
}

// tcpClient multiplexes calls to one remote runtime over one connection,
// speaking whichever codec was negotiated in the connection preamble.
type tcpClient struct {
	conn  net.Conn
	codec WireCodec

	// gob codec: one stream encoder serialized by encMu.
	enc   *gob.Encoder
	encMu sync.Mutex

	// binary codec: frames coalesce into batched writes; mi is the
	// method-intern table, touched only inside co.append callbacks.
	co *coalescer
	mi methodIntern

	onClose func(*tcpClient) // eviction hook, run once on first close

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error
}

func dialClient(addr string, codec WireCodec, onClose func(*tcpClient)) (*tcpClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("orb: dial %s: %w", addr, err)
	}
	pre := [preambleLen]byte{preambleMagic0, preambleMagic1, preambleVer, byte(codec)}
	if _, err := conn.Write(pre[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("orb: preamble %s: %w", addr, err)
	}
	c := &tcpClient{
		conn:    conn,
		codec:   codec,
		onClose: onClose,
		pending: make(map[uint64]chan response),
	}
	switch codec {
	case CodecGob:
		c.enc = gob.NewEncoder(conn)
		go c.readLoopGob()
	default:
		c.co = newCoalescer(conn, func(err error) {
			c.close(fmt.Errorf("orb: send: %w", err))
		})
		go c.readLoopBinary()
	}
	return c, nil
}

func (c *tcpClient) readLoopGob() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			if err == io.EOF {
				err = errors.New("orb: connection closed by peer")
			}
			c.close(err)
			return
		}
		c.deliver(resp)
	}
}

func (c *tcpClient) readLoopBinary() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var body []byte
	var r wire.Reader // reused across frames: warm symbol cache
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxFrameLen {
			if err == nil {
				err = fmt.Errorf("orb: response frame of %d bytes exceeds limit", n)
			} else if err == io.EOF {
				err = errors.New("orb: connection closed by peer")
			}
			c.close(err)
			return
		}
		if uint64(cap(body)) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			c.close(err)
			return
		}
		resp, err := decodeResponseFrame(&r, body)
		if err != nil {
			c.close(fmt.Errorf("orb: decode response: %w", err))
			return
		}
		c.deliver(resp)
	}
}

// deliver hands a response to its waiting caller; responses for
// withdrawn IDs (caller gave up) are dropped.
func (c *tcpClient) deliver(resp response) {
	c.mu.Lock()
	ch, ok := c.pending[resp.ID]
	delete(c.pending, resp.ID)
	c.mu.Unlock()
	if ok {
		ch <- resp
	}
}

// close fails all pending calls, marks the client dead, and (once) runs
// the eviction hook so the owning Runtime drops it from the client cache
// — the next call to this address redials instead of failing forever on
// a dead connection.
func (c *tcpClient) close(err error) {
	c.conn.Close()
	c.mu.Lock()
	first := c.err == nil
	if first {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- response{ErrKind: errKindGeneric, ErrMsg: c.err.Error()}
	}
	onClose := c.onClose
	c.mu.Unlock()
	// Outside c.mu: the hook takes the Runtime's clientsMu, which other
	// goroutines hold while taking c.mu (lock-order discipline).
	if first && onClose != nil {
		onClose(c)
	}
}

// register allocates a request ID and its response channel.
func (c *tcpClient) register(req *request) (chan response, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()
	return ch, nil
}

// withdraw removes a pending entry after the caller gave up on it.
func (c *tcpClient) withdraw(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *tcpClient) call(ctx context.Context, req request) (any, error) {
	if c.codec == CodecGob {
		return c.callGob(ctx, req)
	}
	return c.callBinary(ctx, req)
}

// callBinary sends one request over the coalesced binary path. The
// payload is encoded outside every lock; only the small header encode
// (which must be ordered with method interning) runs under the
// coalescer lock. Appending never blocks — a wedged connection is the
// flusher's problem — so the caller goes straight to the response wait,
// and context expiry resolves through the coalescer's frame-fate
// trichotomy: excised (nothing sent, connection lives), flushed
// (response will be dropped, connection lives), or inflight (stream
// integrity unknown, connection dies and the cache redials).
func (c *tcpClient) callBinary(ctx context.Context, req request) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload := wire.GetBuf()
	pb, err := AppendPayload((*payload)[:0], req.Arg)
	if err != nil {
		wire.PutBuf(payload)
		return nil, err
	}
	*payload = pb
	// Large payload encodes take real time; don't enqueue a frame the
	// caller has already abandoned.
	if err := ctx.Err(); err != nil {
		wire.PutBuf(payload)
		return nil, err
	}

	ch, err := c.register(&req)
	if err != nil {
		wire.PutBuf(payload)
		return nil, err
	}
	frameID, err := c.co.append(func(b []byte) []byte {
		return appendRequestFrame(b, &c.co.scratch, &c.mi, &req, *payload)
	})
	wire.PutBuf(payload)
	if err != nil {
		c.withdraw(req.ID)
		return nil, fmt.Errorf("orb: send: %w", err)
	}

	select {
	case resp := <-ch:
		return resp.Result, decodeErr(resp.ErrKind, resp.ErrMsg)
	case <-ctx.Done():
		c.withdraw(req.ID)
		if c.co.cancel(frameID) == cancelInflight {
			// Bytes of this frame may be half-written: the stream is
			// unusable, so the whole client is closed; pending calls fail
			// fast and the Runtime's eviction hook forces a redial.
			c.close(fmt.Errorf("orb: send aborted: %w", ctx.Err()))
		}
		return nil, ctx.Err()
	}
}

// callGob sends one request over the fallback gob stream.
func (c *tcpClient) callGob(ctx context.Context, req request) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ch, err := c.register(&req)
	if err != nil {
		return nil, err
	}

	// Encode on a separate goroutine so a wedged connection (peer not
	// draining, send buffers full) cannot hold the caller past its ctx.
	// If ctx expires while our encode is in flight the connection is
	// unusable — the stream may be cut mid-message — so the whole client
	// is closed; pending calls fail fast and the Runtime's eviction hook
	// forces a redial. But if ctx expires while we are merely QUEUED on
	// encMu behind another caller's encode, nothing of this message has
	// touched the wire: the call is abandoned (the goroutine skips the
	// encode entirely) and the connection stays alive, so one short
	// per-attempt timeout under load cannot cascade into connection-wide
	// failures that feed breakers and liveness with false positives.
	encDone := make(chan error, 1)
	var sendMu sync.Mutex
	sendStarted, sendAbandoned := false, false
	go func() {
		c.encMu.Lock()
		sendMu.Lock()
		if sendAbandoned {
			sendMu.Unlock()
			c.encMu.Unlock()
			return
		}
		sendStarted = true
		sendMu.Unlock()
		err := c.enc.Encode(&req)
		c.encMu.Unlock()
		encDone <- err
	}()
	select {
	case err := <-encDone:
		if err != nil {
			c.withdraw(req.ID)
			c.close(fmt.Errorf("orb: send: %w", err))
			return nil, fmt.Errorf("orb: send: %w", err)
		}
	case <-ctx.Done():
		sendMu.Lock()
		queued := !sendStarted
		if queued {
			sendAbandoned = true
		}
		sendMu.Unlock()
		c.withdraw(req.ID)
		if !queued {
			c.close(fmt.Errorf("orb: send aborted: %w", ctx.Err()))
		}
		return nil, ctx.Err()
	}

	// Await the response. On ctx expiry the pending entry is withdrawn
	// (no leak); the connection stays usable — a late response for the
	// withdrawn ID is simply dropped by the read loop.
	select {
	case resp := <-ch:
		return resp.Result, decodeErr(resp.ErrKind, resp.ErrMsg)
	case <-ctx.Done():
		c.withdraw(req.ID)
		return nil, ctx.Err()
	}
}

// client returns (dialing if necessary) the shared client for addr.
// Dead clients are evicted eagerly by their close hook; the liveness
// check here remains as a backstop against races.
func (rt *Runtime) client(addr string) (*tcpClient, error) {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	if c, ok := rt.clients[addr]; ok {
		c.mu.Lock()
		dead := c.err != nil
		c.mu.Unlock()
		if !dead {
			return c, nil
		}
		delete(rt.clients, addr)
	}
	c, err := dialClient(addr, rt.clientCodec(), func(dead *tcpClient) {
		rt.clientsMu.Lock()
		if rt.clients[addr] == dead {
			delete(rt.clients, addr)
		}
		rt.clientsMu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	rt.clients[addr] = c
	return c, nil
}

func (rt *Runtime) callRemote(ctx context.Context, addr string, target loid.LOID, method string, arg any) (any, error) {
	reg := rt.Metrics()
	start := time.Now()
	res, err := rt.callRemoteRaw(ctx, addr, target, method, arg)
	reg.Histogram("legion_orb_client_seconds", telemetry.LatencyBuckets,
		"method", method).ObserveSince(start)
	if err != nil {
		reg.Counter("legion_orb_client_errors_total", "method", method).Inc()
	}
	return res, err
}

func (rt *Runtime) callRemoteRaw(ctx context.Context, addr string, target loid.LOID, method string, arg any) (any, error) {
	c, err := rt.client(addr)
	if err != nil {
		return nil, err
	}
	req := request{
		Target: wireLOID{Domain: target.Domain, Class: target.Class, Instance: target.Instance},
		Method: method,
		Arg:    arg,
	}
	if sc, ok := telemetry.SpanFromContext(ctx); ok {
		req.TraceID, req.SpanID = sc.TraceID, sc.SpanID
	}
	if d, ok := ctx.Deadline(); ok {
		req.Deadline = d.UnixNano()
	}
	return c.call(ctx, req)
}

func loidFromWire(w wireLOID) loid.LOID {
	return loid.LOID{Domain: w.Domain, Class: w.Class, Instance: w.Instance}
}
