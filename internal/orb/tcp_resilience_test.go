package orb

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"legion/internal/loid"
)

// slowObj answers "fast" immediately and "slow" after a delay.
type slowObj struct {
	l     loid.LOID
	delay time.Duration
}

func (o *slowObj) LOID() loid.LOID { return o.l }

func (o *slowObj) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	if method == "slow" {
		time.Sleep(o.delay)
	}
	return "done", nil
}

// clientCount returns how many live clients a runtime caches.
func clientCount(rt *Runtime) int {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	return len(rt.clients)
}

// pendingCount sums pending requests across a runtime's cached clients.
func pendingCount(rt *Runtime) int {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	n := 0
	for _, c := range rt.clients {
		c.mu.Lock()
		n += len(c.pending)
		c.mu.Unlock()
	}
	return n
}

// TestDeadClientEvictedAndRedials drops the server side of an
// established connection (listener kept alive) and verifies the cached
// client is evicted promptly and the next call succeeds over a fresh
// dial, instead of failing forever on the dead connection.
func TestDeadClientEvictedAndRedials(t *testing.T) {
	server := NewRuntime("srv")
	obj := &slowObj{l: server.Mint("Echo")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)
	ctx := context.Background()

	if _, err := client.Call(ctx, obj.LOID(), "fast", nil); err != nil {
		t.Fatalf("first call: %v", err)
	}
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1", clientCount(client))
	}

	// Sever every server-side connection; the listener stays up.
	server.mu.RLock()
	s := server.server
	server.mu.RUnlock()
	s.mu.Lock()
	for conn := range s.cs {
		conn.Close()
	}
	s.mu.Unlock()

	// The client's readLoop notices and the eviction hook clears the
	// cache without waiting for the next call.
	deadline := time.Now().Add(2 * time.Second)
	for clientCount(client) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead client never evicted from cache")
		}
		time.Sleep(time.Millisecond)
	}

	// The next call redials transparently.
	if _, err := client.Call(ctx, obj.LOID(), "fast", nil); err != nil {
		t.Fatalf("call after connection loss did not redial: %v", err)
	}
}

// TestCallHonorsContextWhenConnectionWedged writes a payload larger than
// the socket buffers to a peer that never reads, so the flush blocks
// mid-write, and verifies the call returns on ctx expiry (closing the
// now-unusable client, since its stream may be cut mid-frame) instead of
// hanging, with no pending-request leak.
func TestCallHonorsContextWhenConnectionWedged(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, aerr := ln.Accept()
		if aerr == nil {
			accepted <- conn // hold open, never read
		}
	}()

	client := NewRuntime("cli")
	defer client.Close()
	target := loid.LOID{Domain: "srv", Class: "Sink", Instance: 1}
	client.Bind(target, ln.Addr().String())

	payload := make([]byte, 16<<20) // far beyond loopback socket buffers
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, cerr := client.Call(ctx, target, "ingest", payload)
		done <- cerr
	}()

	// Expire the ctx only once the frame's write is verifiably in flight
	// — the case where the stream's integrity is unknown and the client
	// must die. (Expiry before that point excises the frame and keeps the
	// connection, which TestPendingFrameTimeoutLeavesConnectionAlive
	// covers.)
	var c *tcpClient
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c == nil && clientCount(client) == 1 {
			c, _ = client.client(ln.Addr().String())
		}
		if c != nil {
			c.co.mu.Lock()
			inFlight := c.co.writeLo != 0
			c.co.mu.Unlock()
			if inFlight {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged frame's write never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want canceled", err)
	}
	if n := pendingCount(client); n != 0 {
		t.Fatalf("pending requests leaked: %d", n)
	}
	// The wedged client was closed and evicted. The poll exits as soon as
	// eviction lands; the deadline only bounds a genuinely stuck cleanup.
	deadline = time.Now().Add(10 * time.Second)
	for clientCount(client) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedged client never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

// TestQueuedSendTimeoutLeavesConnectionAlive expires a call's ctx while
// it is merely queued on the gob encoder mutex behind another caller's
// encode. Nothing of its message has touched the wire, so the shared
// connection must survive: closing it would cascade one short attempt
// timeout under load into connection-wide failures feeding breakers and
// liveness with false positives. (The binary codec's equivalent
// guarantee — pending-frame excision — is covered by
// TestPendingFrameTimeoutLeavesConnectionAlive.)
func TestQueuedSendTimeoutLeavesConnectionAlive(t *testing.T) {
	server := NewRuntime("srv")
	obj := &slowObj{l: server.Mint("Echo")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.SetWireCodec(CodecGob) // encMu queueing exists only on the gob path
	client.Bind(obj.LOID(), addr)

	// Warm the connection, then grab the encoder mutex as a stand-in for
	// another caller's wedged in-flight encode.
	if _, err := client.Call(context.Background(), obj.LOID(), "fast", nil); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	c, err := client.client(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.encMu.Lock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = client.Call(ctx, obj.LOID(), "fast", nil)
	c.encMu.Unlock()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued call: err=%v, want deadline exceeded", err)
	}

	// The connection was never touched: still cached, still alive, no
	// pending leak, and immediately usable.
	c.mu.Lock()
	alive := c.err == nil
	c.mu.Unlock()
	if !alive {
		t.Fatal("client closed by a merely-queued send timeout")
	}
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1 (queued timeout must not evict)", clientCount(client))
	}
	if n := pendingCount(client); n != 0 {
		t.Fatalf("pending requests leaked: %d", n)
	}
	if res, err := client.Call(context.Background(), obj.LOID(), "fast", nil); err != nil || res != "done" {
		t.Fatalf("call after queued timeout: %v %v", res, err)
	}
}

// TestPendingFrameTimeoutLeavesConnectionAlive is the binary codec's
// counterpart of the queued-send guarantee: a frame whose ctx expires
// while it still sits in the coalescer's pending buffer (behind a write
// that is wedged on a peer that never reads) is excised in place —
// nothing of it touched the wire, so the shared connection must not be
// closed.
func TestPendingFrameTimeoutLeavesConnectionAlive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, aerr := ln.Accept()
		if aerr == nil {
			accepted <- conn // hold open, never read
		}
	}()

	client := NewRuntime("cli")
	defer client.Close()
	target := loid.LOID{Domain: "srv", Class: "Sink", Instance: 1}
	client.Bind(target, ln.Addr().String())

	// Wedge the flusher: a payload far beyond the socket buffers blocks
	// its conn.Write because the peer never reads.
	bigCtx, bigCancel := context.WithCancel(context.Background())
	defer bigCancel()
	bigDone := make(chan error, 1)
	go func() {
		_, cerr := client.Call(bigCtx, target, "ingest", make([]byte, 16<<20))
		bigDone <- cerr
	}()

	// Wait until the big frame's write is in flight.
	var c *tcpClient
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c == nil && clientCount(client) == 1 {
			c, _ = client.client(ln.Addr().String())
		}
		if c != nil {
			c.co.mu.Lock()
			inFlight := c.co.writeLo != 0
			c.co.mu.Unlock()
			if inFlight {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("big frame's write never started")
		}
		time.Sleep(time.Millisecond)
	}

	// A second call lands in the pending buffer behind the wedged write;
	// its ctx expires there, so it must be excised without closing the
	// connection.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := client.Call(ctx, target, "probe", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pending call: err=%v, want deadline exceeded", err)
	}
	c.mu.Lock()
	alive := c.err == nil
	c.mu.Unlock()
	if !alive {
		t.Fatal("client closed by a merely-pending frame timeout")
	}
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1 (pending-frame timeout must not evict)", clientCount(client))
	}
	// Only the wedged big call may still be pending.
	if n := pendingCount(client); n != 1 {
		t.Fatalf("pending requests: %d, want 1 (excised call must withdraw)", n)
	}
	c.co.mu.Lock()
	residual := len(c.co.spans)
	c.co.mu.Unlock()
	if residual != 0 {
		t.Fatalf("excised frame left %d spans in the pending buffer", residual)
	}

	bigCancel()
	if err := <-bigDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("wedged call: err=%v, want canceled", err)
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

// TestCtxExpiryLeavesConnectionUsable cancels a call waiting for a slow
// response and verifies the shared connection survives for other calls
// and the abandoned request leaves no pending entry behind.
func TestCtxExpiryLeavesConnectionUsable(t *testing.T) {
	server := NewRuntime("srv")
	obj := &slowObj{l: server.Mint("Echo"), delay: 300 * time.Millisecond}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := client.Call(ctx, obj.LOID(), "slow", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow call: err=%v, want deadline exceeded", err)
	}
	if n := pendingCount(client); n != 0 {
		t.Fatalf("pending requests leaked after timeout: %d", n)
	}
	// Same cached connection still works.
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1 (connection must survive a timeout)", clientCount(client))
	}
	if res, err := client.Call(context.Background(), obj.LOID(), "fast", nil); err != nil || res != "done" {
		t.Fatalf("fast call after timeout: %v %v", res, err)
	}
}
