package orb

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"legion/internal/loid"
)

// slowObj answers "fast" immediately and "slow" after a delay.
type slowObj struct {
	l     loid.LOID
	delay time.Duration
}

func (o *slowObj) LOID() loid.LOID { return o.l }

func (o *slowObj) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	if method == "slow" {
		time.Sleep(o.delay)
	}
	return "done", nil
}

// clientCount returns how many live clients a runtime caches.
func clientCount(rt *Runtime) int {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	return len(rt.clients)
}

// pendingCount sums pending requests across a runtime's cached clients.
func pendingCount(rt *Runtime) int {
	rt.clientsMu.Lock()
	defer rt.clientsMu.Unlock()
	n := 0
	for _, c := range rt.clients {
		c.mu.Lock()
		n += len(c.pending)
		c.mu.Unlock()
	}
	return n
}

// TestDeadClientEvictedAndRedials drops the server side of an
// established connection (listener kept alive) and verifies the cached
// client is evicted promptly and the next call succeeds over a fresh
// dial, instead of failing forever on the dead connection.
func TestDeadClientEvictedAndRedials(t *testing.T) {
	server := NewRuntime("srv")
	obj := &slowObj{l: server.Mint("Echo")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)
	ctx := context.Background()

	if _, err := client.Call(ctx, obj.LOID(), "fast", nil); err != nil {
		t.Fatalf("first call: %v", err)
	}
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1", clientCount(client))
	}

	// Sever every server-side connection; the listener stays up.
	server.mu.RLock()
	s := server.server
	server.mu.RUnlock()
	s.mu.Lock()
	for conn := range s.cs {
		conn.Close()
	}
	s.mu.Unlock()

	// The client's readLoop notices and the eviction hook clears the
	// cache without waiting for the next call.
	deadline := time.Now().Add(2 * time.Second)
	for clientCount(client) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dead client never evicted from cache")
		}
		time.Sleep(time.Millisecond)
	}

	// The next call redials transparently.
	if _, err := client.Call(ctx, obj.LOID(), "fast", nil); err != nil {
		t.Fatalf("call after connection loss did not redial: %v", err)
	}
}

// TestCallHonorsContextWhenConnectionWedged writes a payload larger than
// the socket buffers to a peer that never reads, so the gob encode
// blocks, and verifies the call returns on ctx expiry (closing the
// now-unusable client) instead of hanging, with no pending-request leak.
func TestCallHonorsContextWhenConnectionWedged(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, aerr := ln.Accept()
		if aerr == nil {
			accepted <- conn // hold open, never read
		}
	}()

	client := NewRuntime("cli")
	defer client.Close()
	target := loid.LOID{Domain: "srv", Class: "Sink", Instance: 1}
	client.Bind(target, ln.Addr().String())

	payload := make([]byte, 16<<20) // far beyond loopback socket buffers
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Call(ctx, target, "ingest", payload)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v, want deadline exceeded", err)
	}
	// Generous bound: gob-encoding the payload before the write wedges is
	// itself multi-second work under the race detector; "hung" means the
	// call waited on the socket rather than on ctx.
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("call hung %v on a wedged connection", elapsed)
	}
	if n := pendingCount(client); n != 0 {
		t.Fatalf("pending requests leaked: %d", n)
	}
	// The wedged client was closed and evicted. The poll exits as soon as
	// eviction lands; the deadline only bounds a genuinely stuck cleanup.
	deadline := time.Now().Add(10 * time.Second)
	for clientCount(client) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("wedged client never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case conn := <-accepted:
		conn.Close()
	default:
	}
}

// TestQueuedSendTimeoutLeavesConnectionAlive expires a call's ctx while
// it is merely queued on the encoder mutex behind another caller's
// encode. Nothing of its message has touched the wire, so the shared
// connection must survive: closing it would cascade one short attempt
// timeout under load into connection-wide failures feeding breakers and
// liveness with false positives.
func TestQueuedSendTimeoutLeavesConnectionAlive(t *testing.T) {
	server := NewRuntime("srv")
	obj := &slowObj{l: server.Mint("Echo")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	// Warm the connection, then grab the encoder mutex as a stand-in for
	// another caller's wedged in-flight encode.
	if _, err := client.Call(context.Background(), obj.LOID(), "fast", nil); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	c, err := client.client(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.encMu.Lock()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = client.Call(ctx, obj.LOID(), "fast", nil)
	c.encMu.Unlock()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued call: err=%v, want deadline exceeded", err)
	}

	// The connection was never touched: still cached, still alive, no
	// pending leak, and immediately usable.
	c.mu.Lock()
	alive := c.err == nil
	c.mu.Unlock()
	if !alive {
		t.Fatal("client closed by a merely-queued send timeout")
	}
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1 (queued timeout must not evict)", clientCount(client))
	}
	if n := pendingCount(client); n != 0 {
		t.Fatalf("pending requests leaked: %d", n)
	}
	if res, err := client.Call(context.Background(), obj.LOID(), "fast", nil); err != nil || res != "done" {
		t.Fatalf("call after queued timeout: %v %v", res, err)
	}
}

// TestCtxExpiryLeavesConnectionUsable cancels a call waiting for a slow
// response and verifies the shared connection survives for other calls
// and the abandoned request leaves no pending entry behind.
func TestCtxExpiryLeavesConnectionUsable(t *testing.T) {
	server := NewRuntime("srv")
	obj := &slowObj{l: server.Mint("Echo"), delay: 300 * time.Millisecond}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := client.Call(ctx, obj.LOID(), "slow", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow call: err=%v, want deadline exceeded", err)
	}
	if n := pendingCount(client); n != 0 {
		t.Fatalf("pending requests leaked after timeout: %d", n)
	}
	// Same cached connection still works.
	if clientCount(client) != 1 {
		t.Fatalf("clients cached: %d, want 1 (connection must survive a timeout)", clientCount(client))
	}
	if res, err := client.Call(context.Background(), obj.LOID(), "fast", nil); err != nil || res != "done" {
		t.Fatalf("fast call after timeout: %v %v", res, err)
	}
}
