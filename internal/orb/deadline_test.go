package orb

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"legion/internal/loid"
	"legion/internal/telemetry"
)

// deadlineObj records the context deadline each invocation observed.
type deadlineObj struct {
	l        loid.LOID
	invoked  atomic.Int64
	deadline atomic.Int64 // UnixNano of last observed deadline, 0 = none
}

func (o *deadlineObj) LOID() loid.LOID { return o.l }

func (o *deadlineObj) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	o.invoked.Add(1)
	if d, ok := ctx.Deadline(); ok {
		o.deadline.Store(d.UnixNano())
	} else {
		o.deadline.Store(0)
	}
	return "ok", nil
}

// TestDeadlinePropagatesAcrossRuntimes verifies that a caller's context
// deadline rides the TCP frame and is reconstructed as a server-side
// context deadline: the handler observes a deadline within ~1 RTT of
// (here: effectively identical to) the client's.
func TestDeadlinePropagatesAcrossRuntimes(t *testing.T) {
	server := NewRuntime("srv")
	obj := &deadlineObj{l: server.Mint("Clock")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	want := time.Now().Add(2 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), want)
	defer cancel()
	if _, err := client.Call(ctx, obj.LOID(), "probe", nil); err != nil {
		t.Fatalf("call: %v", err)
	}
	got := obj.deadline.Load()
	if got == 0 {
		t.Fatal("handler observed no context deadline")
	}
	// Same process, same clock: the reconstructed deadline should match
	// the client's to the nanosecond; allow 50ms of slack for a combined
	// parent-context deadline or clock adjustment.
	if diff := time.Duration(got - want.UnixNano()); diff < -50*time.Millisecond || diff > 50*time.Millisecond {
		t.Fatalf("server-side deadline off by %v (got %d, want %d)", diff, got, want.UnixNano())
	}

	// Without a caller deadline, none should be fabricated server-side.
	if _, err := client.Call(context.Background(), obj.LOID(), "probe", nil); err != nil {
		t.Fatalf("call without deadline: %v", err)
	}
	if got := obj.deadline.Load(); got != 0 {
		t.Fatalf("handler observed spurious deadline %d with deadline-free caller", got)
	}
}

// TestExpiredFrameRefusedWithoutDispatch sends a frame whose propagated
// deadline already passed (via a raw gob connection — the high-level
// client refuses to send on an expired ctx) and verifies the server
// refuses it with ErrDeadlineExpired without ever invoking the method,
// and counts the shed in legion_orb_deadline_expired_total.
func TestExpiredFrameRefusedWithoutDispatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	server := NewRuntime("srv")
	server.SetMetrics(reg)
	obj := &deadlineObj{l: server.Mint("Clock")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Select the gob fallback codec in the connection preamble, then
	// speak raw gob frames — this doubles as coverage that a
	// gob-negotiated connection serves.
	if _, err := conn.Write([]byte{preambleMagic0, preambleMagic1, preambleVer, byte(CodecGob)}); err != nil {
		t.Fatalf("preamble: %v", err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	l := obj.LOID()
	req := request{
		ID:       7,
		Target:   wireLOID{Domain: l.Domain, Class: l.Class, Instance: l.Instance},
		Method:   "probe",
		Deadline: time.Now().Add(-time.Second).UnixNano(),
	}
	if err := enc.Encode(&req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.ID != req.ID {
		t.Fatalf("response ID = %d, want %d", resp.ID, req.ID)
	}
	if resp.ErrKind != errKindDeadline {
		t.Fatalf("ErrKind = %d, want %d (deadline); msg %q", resp.ErrKind, errKindDeadline, resp.ErrMsg)
	}
	if derr := decodeErr(resp.ErrKind, resp.ErrMsg); !errors.Is(derr, ErrDeadlineExpired) {
		t.Fatalf("decoded error %v does not match ErrDeadlineExpired", derr)
	}
	if n := obj.invoked.Load(); n != 0 {
		t.Fatalf("method invoked %d times for an expired-on-arrival frame", n)
	}
	if n := reg.CounterValue("legion_orb_deadline_expired_total", "method", "probe"); n != 1 {
		t.Fatalf("legion_orb_deadline_expired_total = %v, want 1", n)
	}
}
