package orb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"

	"legion/internal/loid"
	"legion/internal/wire"
)

// This file is the ORB's compact binary codec: the negotiated
// alternative to the original per-call gob streams. Frames are
// length-prefixed; headers are varints (request ID, LOID, per-connection
// interned method ID, trace/span IDs, deadline); payloads are
// hand-rolled WireMessage encodings selected by stable registered type
// IDs, with gob retained as an inline fallback for exotic types. One
// version byte at connection open (the preamble) selects binary or gob
// for the whole connection, so mixed-version runtimes interoperate.

// WireCodec selects the connection protocol a client runtime speaks.
type WireCodec byte

// The negotiable codecs. The byte values appear on the wire in the
// connection preamble and must never be renumbered.
const (
	// CodecBinary is the compact binary framing (default).
	CodecBinary WireCodec = 'B'
	// CodecGob is the original gob stream, kept as the negotiated
	// fallback for mixed-version runtimes.
	CodecGob WireCodec = 'G'
)

// String names the codec.
func (c WireCodec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// preamble is the 4-byte connection open: magic, protocol version, and
// the codec byte the client selected for this connection.
const (
	preambleMagic0 = 'L'
	preambleMagic1 = 'G'
	preambleVer    = 1
	preambleLen    = 4
)

// maxFrameLen bounds a single binary frame; larger prefixes indicate a
// corrupt stream and drop the connection.
const maxFrameLen = 1 << 26 // 64M

// ErrServerOverload reports that the serving runtime's bounded request
// pool was full and the frame was refused before dispatch. The message
// deliberately carries package proto's ErrOverload prefix ("legion:
// overloaded, request shed") so package resilient classifies transport-
// level sheds as permanent refusals — retrying into an overloaded
// server feeds the overload, and tripping breakers on sheds would
// amplify it into an availability collapse.
var ErrServerOverload = errors.New("legion: overloaded, request shed by orb server")

// --- payload registry ---

// WireMessage is implemented by message types that cross the binary
// codec with hand-rolled encodings. AppendWire appends the value to b
// and returns the extended slice; DecodeWire consumes the same field
// sequence from r, reusing the receiver's slice capacities, and reports
// malformed input through r.Err.
type WireMessage interface {
	AppendWire(b []byte) []byte
	DecodeWire(r *wire.Reader)
}

// Payload tags. Tag values 0 and 1 are structural; registered message
// type IDs start at wireIDFirst and are stable, explicitly assigned
// constants (package proto) that must never be renumbered.
const (
	payloadNil = 0 // nil argument or result
	payloadGob = 1 // inline gob blob: the fallback for unregistered types
	// WireIDFirst is the smallest assignable message type ID.
	WireIDFirst = 16
)

type wireEncodeFunc func(v any, b []byte) []byte

type wireDecodeFunc func(r *wire.Reader) any

var (
	wireRegMu    sync.RWMutex
	wireEncoders = make(map[reflect.Type]wireEncodeFunc)
	wireTypeIDs  = make(map[reflect.Type]uint64)
	wireDecoders = make(map[uint64]wireDecodeFunc)
)

// RegisterWireMessage registers T under the given stable wire type ID
// for the binary codec, alongside the gob registration every wire type
// already has (RegisterWireType). Values of both T and *T encode under
// the ID; decoding always produces a T value, matching gob's semantics
// for interface-carried pointers. Registration happens in init
// functions; re-registering an ID or type panics.
func RegisterWireMessage[T any, PT interface {
	*T
	WireMessage
}](id uint16) {
	if id < WireIDFirst {
		panic(fmt.Sprintf("orb: wire type ID %d is reserved (first assignable is %d)", id, WireIDFirst))
	}
	var zero T
	typ := reflect.TypeOf(zero)
	enc := func(v any, b []byte) []byte {
		if p, ok := v.(PT); ok {
			return p.AppendWire(b)
		}
		t := v.(T)
		return PT(&t).AppendWire(b)
	}
	dec := func(r *wire.Reader) any {
		var t T
		PT(&t).DecodeWire(r)
		if r.Err != nil {
			return nil
		}
		return t
	}
	wireRegMu.Lock()
	defer wireRegMu.Unlock()
	if _, dup := wireDecoders[uint64(id)]; dup {
		panic(fmt.Sprintf("orb: wire type ID %d registered twice", id))
	}
	if _, dup := wireTypeIDs[typ]; dup {
		panic(fmt.Sprintf("orb: wire type %v registered twice", typ))
	}
	wireEncoders[typ] = enc
	wireEncoders[reflect.PointerTo(typ)] = enc
	wireTypeIDs[typ] = uint64(id)
	wireTypeIDs[reflect.PointerTo(typ)] = uint64(id)
	wireDecoders[uint64(id)] = dec
}

// gobPayload wraps the fallback blob so gob can encode interface values
// of any registered concrete type.
type gobPayload struct{ V any }

// AppendPayload appends v's payload encoding: a uvarint type tag and
// the body. Registered WireMessage types use their hand-rolled
// encodings; everything else falls back to an inline gob blob, so
// exotic `any` arguments (test doubles, raw byte slices, strings) keep
// working over the binary codec.
func AppendPayload(b []byte, v any) ([]byte, error) {
	if v == nil {
		return wire.AppendUvarint(b, payloadNil), nil
	}
	typ := reflect.TypeOf(v)
	wireRegMu.RLock()
	enc := wireEncoders[typ]
	id := wireTypeIDs[typ]
	wireRegMu.RUnlock()
	if enc != nil {
		b = wire.AppendUvarint(b, id)
		return enc(v, b), nil
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(gobPayload{V: v}); err != nil {
		return b, fmt.Errorf("orb: encode payload %T: %w", v, err)
	}
	b = wire.AppendUvarint(b, payloadGob)
	return wire.AppendBytes(b, blob.Bytes()), nil
}

// DecodePayload consumes one payload from r. Decoded values never alias
// r's buffer, so transports may recycle it immediately.
func DecodePayload(r *wire.Reader) (any, error) {
	tag := r.Uvarint()
	if r.Err != nil {
		return nil, r.Err
	}
	switch tag {
	case payloadNil:
		return nil, nil
	case payloadGob:
		n := r.Len()
		if r.Err != nil {
			return nil, r.Err
		}
		var p gobPayload
		if err := gob.NewDecoder(bytes.NewReader(r.B[:n])).Decode(&p); err != nil {
			return nil, fmt.Errorf("orb: decode gob payload: %w", err)
		}
		r.B = r.B[n:]
		return p.V, nil
	default:
		wireRegMu.RLock()
		dec := wireDecoders[tag]
		wireRegMu.RUnlock()
		if dec == nil {
			return nil, fmt.Errorf("orb: unknown wire type ID %d", tag)
		}
		v := dec(r)
		if r.Err != nil {
			return nil, fmt.Errorf("orb: decode wire type %d: %w", tag, r.Err)
		}
		return v, nil
	}
}

// EncodePayloadBytes is AppendPayload into a fresh slice; the
// loopback-codec boundary and the differential fuzzers use it.
func EncodePayloadBytes(v any) ([]byte, error) {
	return AppendPayload(nil, v)
}

// DecodePayloadBytes decodes exactly one payload from b, rejecting
// trailing garbage.
func DecodePayloadBytes(b []byte) (any, error) {
	r := wire.GetReader(b)
	defer wire.PutReader(r)
	v, err := DecodePayload(r)
	if err != nil {
		return nil, err
	}
	if len(r.B) != 0 {
		return nil, fmt.Errorf("orb: payload has %d trailing bytes", len(r.B))
	}
	return v, nil
}

// GobRoundTrip round-trips v through the gob fallback encoding. The
// differential fuzzer uses it as the reference semantics the binary
// codec must match.
func GobRoundTrip(v any) (any, error) {
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(gobPayload{V: v}); err != nil {
		return nil, err
	}
	var p gobPayload
	if err := gob.NewDecoder(&blob).Decode(&p); err != nil {
		return nil, err
	}
	return p.V, nil
}

// --- method tables ---

// The binary header carries methods as per-connection interned IDs: the
// first frame naming a method carries (ID, name); later frames carry
// the ID alone. Tables are built independently on each side of every
// connection, so no global registration order has to agree between
// runtimes of different versions.

// methodIntern is the sender side: name -> assigned ID.
type methodIntern struct {
	ids  map[string]uint64
	next uint64
}

// intern returns the method's connection-local ID, assigning the next
// one on first use. The caller must serialize intern calls with frame
// emission (the coalescer lock does this) so the introducing frame
// reaches the peer first.
func (m *methodIntern) intern(name string) (id uint64, first bool) {
	if m.ids == nil {
		m.ids = make(map[string]uint64, 16)
	}
	if id, ok := m.ids[name]; ok {
		return id, false
	}
	m.next++
	m.ids[name] = m.next
	return m.next, true
}

// methodTable is the receiver side: ID -> name.
type methodTable struct {
	names map[uint64]string
}

func (m *methodTable) lookup(id uint64) (string, bool) {
	s, ok := m.names[id]
	return s, ok
}

func (m *methodTable) define(id uint64, name string) {
	if m.names == nil {
		m.names = make(map[uint64]string, 16)
	}
	m.names[id] = name
}

// appendMethod appends the method field: uvarint id<<1|first, then the
// name when first.
func appendMethod(b []byte, mi *methodIntern, name string) []byte {
	id, first := mi.intern(name)
	code := id << 1
	if first {
		code |= 1
	}
	b = wire.AppendUvarint(b, code)
	if first {
		b = wire.AppendString(b, name)
	}
	return b
}

// decodeMethod consumes a method field against the connection's table.
func decodeMethod(r *wire.Reader, mt *methodTable) (string, error) {
	code := r.Uvarint()
	if r.Err != nil {
		return "", r.Err
	}
	id := code >> 1
	if code&1 == 1 {
		name := wire.Intern([]byte(r.Str()))
		if r.Err != nil {
			return "", r.Err
		}
		mt.define(id, name)
		return name, nil
	}
	name, ok := mt.lookup(id)
	if !ok {
		return "", fmt.Errorf("orb: frame references undefined method ID %d", id)
	}
	return name, nil
}

// --- binary frames ---

// appendRequestFrame appends one length-prefixed request frame: header
// (request ID, method, target LOID, trace/span IDs, deadline) + the
// pre-encoded payload bytes. The header is encoded under the caller's
// (coalescer) lock because method interning must be ordered with frame
// emission; the payload was encoded outside any lock.
func appendRequestFrame(b []byte, scratch *[]byte, mi *methodIntern, req *request, payload []byte) []byte {
	h := (*scratch)[:0]
	h = wire.AppendUvarint(h, req.ID)
	h = appendMethod(h, mi, req.Method)
	h = loid.LOID{Domain: req.Target.Domain, Class: req.Target.Class, Instance: req.Target.Instance}.AppendWire(h)
	h = wire.AppendUvarint(h, req.TraceID)
	h = wire.AppendUvarint(h, req.SpanID)
	h = wire.AppendVarint(h, req.Deadline)
	*scratch = h
	b = wire.AppendUvarint(b, uint64(len(h)+len(payload)))
	b = append(b, h...)
	return append(b, payload...)
}

// decodeRequestHeader consumes a request frame header (the length
// prefix already stripped); the payload is decoded separately so a bad
// payload can be answered without abandoning the stream.
func decodeRequestHeader(r *wire.Reader, mt *methodTable) (requestMeta, error) {
	var meta requestMeta
	meta.id = r.Uvarint()
	m, err := decodeMethod(r, mt)
	if err != nil {
		return meta, err
	}
	meta.method = m
	meta.target.DecodeWire(r)
	meta.traceID = r.Uvarint()
	meta.spanID = r.Uvarint()
	meta.deadline = r.Varint()
	return meta, r.Err
}

// appendResponseFrame appends one length-prefixed response frame:
// request ID, error kind, error message, payload bytes (pre-encoded).
func appendResponseFrame(b []byte, scratch *[]byte, id uint64, errKind int, errMsg string, payload []byte) []byte {
	h := (*scratch)[:0]
	h = wire.AppendUvarint(h, id)
	h = wire.AppendUvarint(h, uint64(errKind))
	h = wire.AppendString(h, errMsg)
	*scratch = h
	b = wire.AppendUvarint(b, uint64(len(h)+len(payload)))
	b = append(b, h...)
	return append(b, payload...)
}

// decodeResponseFrame consumes a response frame body through the
// caller's Reader (reused per connection for its warm symbol cache).
func decodeResponseFrame(r *wire.Reader, body []byte) (response, error) {
	r.Reset(body)
	var resp response
	resp.ID = r.Uvarint()
	resp.ErrKind = int(r.Uvarint())
	resp.ErrMsg = r.Str()
	if r.Err != nil {
		return resp, r.Err
	}
	res, err := DecodePayload(r)
	if err != nil {
		return resp, err
	}
	resp.Result = res
	return resp, nil
}
