package orb

import (
	"context"
	"testing"

	"legion/internal/telemetry"
	"legion/internal/wire"
)

// benchMsg is a modest RPC argument registered with both codecs: the
// binary registry (typed encoder, the fast path) and gob (so the gob
// wire codec can carry it as an interface value).
type benchMsg struct {
	Domain string
	Class  string
	ID     uint64
	Load   float64
}

func (m *benchMsg) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Domain)
	b = wire.AppendString(b, m.Class)
	b = wire.AppendUvarint(b, m.ID)
	return wire.AppendFloat64(b, m.Load)
}

func (m *benchMsg) DecodeWire(r *wire.Reader) {
	m.Domain = r.Sym()
	m.Class = r.Sym()
	m.ID = r.Uvarint()
	m.Load = r.Float64()
}

func init() {
	// Test-binary registry: orb's tests never import proto, whose IDs
	// start at WireIDFirst, so the first ID is free here.
	RegisterWireMessage[benchMsg, *benchMsg](WireIDFirst)
	RegisterWireType(benchMsg{})
}

// BenchmarkLoopbackCalls measures end-to-end call throughput over a
// real TCP loopback connection — preamble negotiation, frame codec,
// write coalescing, server limiter, response demultiplexing — for each
// wire codec. b.RunParallel drives many concurrent callers through one
// multiplexed connection, which is exactly the coalescer's target
// workload: concurrent frames gathered into batched writes.
func BenchmarkLoopbackCalls(b *testing.B) {
	for _, codec := range []WireCodec{CodecBinary, CodecGob} {
		b.Run(codec.String(), func(b *testing.B) {
			server := NewRuntime("srv")
			server.SetMetrics(telemetry.NewDisabled())
			obj := &codecEchoObj{l: server.Mint("Echo")}
			server.Register(obj)
			addr, err := server.ListenAndServe("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer server.Close()

			client := NewRuntime("cli")
			client.SetMetrics(telemetry.NewDisabled())
			client.SetWireCodec(codec)
			defer client.Close()
			client.Bind(obj.LOID(), addr)

			ctx := context.Background()
			arg := benchMsg{Domain: "zone-1", Class: "Worker", ID: 42, Load: 0.5}
			if _, err := client.Call(ctx, obj.LOID(), "echo", arg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			// Dozens of concurrent callers per core: call throughput on a
			// multiplexed connection is a batching problem, not a CPU one —
			// the coalescer needs concurrent frames to gather, and a single
			// serial caller would measure round-trip latency instead.
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.Call(ctx, obj.LOID(), "echo", arg); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			callsPerSec := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(callsPerSec, "calls/s")
		})
	}
}
