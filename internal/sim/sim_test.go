package sim

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/sched"
)

func buildTestFleet(t *testing.T, specs []HostSpec) *Fleet {
	t.Helper()
	ms := core.New("uva", core.Options{Seed: 7})
	return Build(ms, rand.New(rand.NewSource(7)), specs)
}

func TestBuildFleet(t *testing.T) {
	f := buildTestFleet(t, RandomSpecs(rand.New(rand.NewSource(1)), 10, "z1", "z2"))
	if len(f.Hosts) != 10 {
		t.Fatalf("hosts: %d", len(f.Hosts))
	}
	// One vault per zone, hosts joined the Collection.
	if n := len(f.MS.Vaults()); n < 1 || n > 2 {
		t.Errorf("vaults: %d", n)
	}
	if f.MS.Collection.Size() != 10 {
		t.Errorf("collection: %d", f.MS.Collection.Size())
	}
	for _, h := range f.Hosts {
		if s, ok := f.SpecOf(h.LOID()); !ok || s.CPUs < 1 {
			t.Errorf("SpecOf(%v) = %+v %v", h.LOID(), s, ok)
		}
	}
	if _, ok := f.SpecOf(loid.LOID{Domain: "x", Class: "Host", Instance: 1}); ok {
		t.Error("SpecOf unknown host")
	}
}

func TestUniformSpecs(t *testing.T) {
	specs := UniformSpecs(5, 4)
	if len(specs) != 5 || specs[0].CPUs != 4 || specs[0].Arch != "x86" {
		t.Errorf("specs: %+v", specs[0])
	}
}

func TestLoadProcesses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := RandomWalk{Step: 0.1, Min: 0, Max: 1}
	cur := 0.5
	for i := 0; i < 1000; i++ {
		cur = w.Next(rng, cur)
		if cur < 0 || cur > 1 {
			t.Fatalf("walk escaped bounds: %v", cur)
		}
	}
	s := &Sinusoid{Base: 0.5, Amp: 0.3, Omega: 0.1}
	lo, hi := 1.0, 0.0
	for i := 0; i < 200; i++ {
		v := s.Next(rng, 0)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0.25 || hi < 0.75 {
		t.Errorf("sinusoid range [%v, %v]", lo, hi)
	}
	sp := Spiky{Quiet: 0.1, Spike: 0.9, P: 0.5}
	spikes := 0
	for i := 0; i < 1000; i++ {
		if sp.Next(rng, 0) == 0.9 {
			spikes++
		}
	}
	if spikes < 400 || spikes > 600 {
		t.Errorf("spike count: %d", spikes)
	}
}

func TestStepEvolvesLoadAndPushes(t *testing.T) {
	f := buildTestFleet(t, UniformSpecs(3, 4))
	f.SetAllProcesses(func(i int) LoadProcess {
		return Spiky{Quiet: 0.9, Spike: 0.9, P: 1} // deterministic high load
	})
	f.Step(context.Background())
	recs, err := f.MS.Collection.Query("$host_load > 0.8")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("pushed loads: %d records", len(recs))
	}
	// Per-host process override.
	f.SetProcess(0, Spiky{Quiet: 0.0, Spike: 0.0, P: 0})
	f.Step(context.Background())
	if f.Hosts[0].Load() != 0 {
		t.Errorf("host 0 load: %v", f.Hosts[0].Load())
	}
}

func mappingsOn(hosts []loid.LOID, counts []int) []sched.Mapping {
	var out []sched.Mapping
	cl := loid.LOID{Domain: "uva", Class: "C", Instance: 1}
	vl := loid.LOID{Domain: "uva", Class: "V", Instance: 1}
	for i, h := range hosts {
		for j := 0; j < counts[i]; j++ {
			out = append(out, sched.Mapping{Class: cl, Host: h, Vault: vl})
		}
	}
	return out
}

func TestMakespanModel(t *testing.T) {
	f := buildTestFleet(t, []HostSpec{
		{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1", Speed: 1.0},
		{Arch: "x86", OS: "Linux", CPUs: 1, MemoryMB: 512, Zone: "z1", Speed: 1.0},
	})
	h0, h1 := f.Hosts[0].LOID(), f.Hosts[1].LOID()
	task := time.Second

	// 4 tasks on the 4-CPU idle host: one wave -> 1s.
	ms := f.Makespan(mappingsOn([]loid.LOID{h0}, []int{4}), task)
	if ms != time.Second {
		t.Errorf("one wave: %v", ms)
	}
	// 5 tasks: two waves -> 2s.
	ms = f.Makespan(mappingsOn([]loid.LOID{h0}, []int{5}), task)
	if ms != 2*time.Second {
		t.Errorf("two waves: %v", ms)
	}
	// 2 tasks on the 1-CPU host: 2 waves -> 2s, dominating 4 on h0.
	ms = f.Makespan(mappingsOn([]loid.LOID{h0, h1}, []int{4, 2}), task)
	if ms != 2*time.Second {
		t.Errorf("bottleneck host: %v", ms)
	}
	// Load slows things: load 1.0 doubles the time.
	f.Hosts[0].SetExternalLoad(1.0)
	ms = f.Makespan(mappingsOn([]loid.LOID{h0}, []int{4}), task)
	if ms != 2*time.Second {
		t.Errorf("loaded: %v", ms)
	}
}

func TestImbalance(t *testing.T) {
	f := buildTestFleet(t, UniformSpecs(2, 4))
	h0, h1 := f.Hosts[0].LOID(), f.Hosts[1].LOID()
	// Balanced: 2 and 2 on equal hosts.
	if im := f.Imbalance(mappingsOn([]loid.LOID{h0, h1}, []int{2, 2})); im != 1.0 {
		t.Errorf("balanced imbalance: %v", im)
	}
	// Skewed: 6 and 2 -> max/mean = 6/4 = 1.5.
	if im := f.Imbalance(mappingsOn([]loid.LOID{h0, h1}, []int{6, 2})); im != 1.5 {
		t.Errorf("skewed imbalance: %v", im)
	}
	if im := f.Imbalance(nil); im != 0 {
		t.Errorf("empty imbalance: %v", im)
	}
}

func TestCrossZoneFraction(t *testing.T) {
	f := buildTestFleet(t, []HostSpec{
		{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1", Speed: 1},
		{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1", Speed: 1},
		{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z2", Speed: 1},
	})
	h := []loid.LOID{f.Hosts[0].LOID(), f.Hosts[1].LOID(), f.Hosts[2].LOID()}
	// 3 in z1, 1 in z2 -> 0.25 cross-zone.
	if cz := f.CrossZoneFraction(mappingsOn(h, []int{2, 1, 1})); cz != 0.25 {
		t.Errorf("cross-zone: %v", cz)
	}
	if cz := f.CrossZoneFraction(nil); cz != 0 {
		t.Errorf("empty: %v", cz)
	}
}

func TestTaskCounts(t *testing.T) {
	f := buildTestFleet(t, UniformSpecs(2, 4))
	h0, h1 := f.Hosts[0].LOID(), f.Hosts[1].LOID()
	counts := TaskCounts(mappingsOn([]loid.LOID{h0, h1}, []int{3, 1}))
	if counts[h0] != 3 || counts[h1] != 1 {
		t.Errorf("counts: %v", counts)
	}
}

func TestRandomSpecsProperties(t *testing.T) {
	specs := RandomSpecs(rand.New(rand.NewSource(3)), 50, "z1", "z2", "z3")
	zones := map[string]bool{}
	for _, s := range specs {
		if s.CPUs < 1 || s.MemoryMB < 64 || s.Speed <= 0 {
			t.Errorf("bad spec: %+v", s)
		}
		if s.Load < 0.1 || s.Load > 0.6 {
			t.Errorf("load out of range: %v", s.Load)
		}
		zones[s.Zone] = true
	}
	if len(zones) < 2 {
		t.Errorf("zones used: %v", zones)
	}
	// Defaults to z1 with no zones given.
	specs = RandomSpecs(rand.New(rand.NewSource(3)), 3)
	for _, s := range specs {
		if s.Zone != "z1" {
			t.Errorf("default zone: %q", s.Zone)
		}
	}
}

func TestWorkloadBuilders(t *testing.T) {
	class := loid.LOID{Domain: "uva", Class: "WorkerClass", Instance: 1}
	bot := BagOfTasks(class, 16, time.Second)
	if bot.Request.TotalInstances() != 16 || bot.IsGrid() {
		t.Errorf("bag: %+v", bot)
	}
	st := StencilApp(class, 4, 5, time.Second)
	if st.Request.TotalInstances() != 20 || !st.IsGrid() || st.GridRows != 4 {
		t.Errorf("stencil: %+v", st)
	}
	rng := rand.New(rand.NewSource(1))
	ps, durs := ParamSweep(class, 10, time.Second, 3*time.Second, rng)
	if ps.Request.TotalInstances() != 10 || len(durs) != 10 {
		t.Fatalf("sweep: %+v %v", ps, durs)
	}
	for _, d := range durs {
		if d < time.Second || d > 3*time.Second {
			t.Errorf("duration out of range: %v", d)
		}
	}
	if ps.TaskDuration < time.Second || ps.TaskDuration > 3*time.Second {
		t.Errorf("mean duration: %v", ps.TaskDuration)
	}
}

func TestWeightedMakespan(t *testing.T) {
	f := buildTestFleet(t, UniformSpecs(2, 4)) // 4 CPUs, speed 1, load 0
	h0, h1 := f.Hosts[0].LOID(), f.Hosts[1].LOID()
	cl := loid.LOID{Domain: "uva", Class: "C", Instance: 1}
	vl := loid.LOID{Domain: "uva", Class: "V", Instance: 1}
	maps := []sched.Mapping{
		{Class: cl, Host: h0, Vault: vl},
		{Class: cl, Host: h0, Vault: vl},
		{Class: cl, Host: h1, Vault: vl},
	}
	durs := []time.Duration{8 * time.Second, 4 * time.Second, 40 * time.Second}
	// Host0: 12s of work over 4 cpus = 3s; host1: 40s/4 = 10s -> 10s.
	if got := f.WeightedMakespan(maps, durs); got != 10*time.Second {
		t.Errorf("weighted makespan = %v", got)
	}
	// Load slows the bottleneck host.
	f.Hosts[1].SetExternalLoad(1.0)
	if got := f.WeightedMakespan(maps, durs); got != 20*time.Second {
		t.Errorf("loaded weighted makespan = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths should panic")
		}
	}()
	f.WeightedMakespan(maps, durs[:1])
}
