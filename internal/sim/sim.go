// Package sim builds synthetic metacomputing environments and workloads
// for the experiments in EXPERIMENTS.md.
//
// The paper evaluated Legion on a real multi-site testbed (Unix
// workstations, MPPs, batch-managed clusters). That environment is not
// available, so sim provides the closest synthetic equivalent: fleets of
// heterogeneous Host objects (mixed architectures, OSes, CPU counts,
// zones, costs, batch queues) whose background load evolves under
// configurable stochastic processes, plus the workload families the
// paper's §4.3 names — bags of independent tasks, MPI-style 2-D stencil
// applications, and parameter-space studies. The RMI code path exercised
// is exactly the production one; only the machine behind each Host is
// synthetic.
package sim

import (
	"context"
	"math"
	"math/rand"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/sched"
	"legion/internal/vault"
)

// HostSpec describes one synthetic machine.
type HostSpec struct {
	Arch     string
	OS       string
	OSVer    string
	CPUs     int
	MemoryMB int
	Zone     string
	Cost     float64
	// Speed is a relative per-CPU speed factor used by the makespan
	// model; 1.0 is the baseline machine.
	Speed float64
	// Load is the initial background load.
	Load float64
	// MaxShared overrides the host's timesharing multiplex bound
	// (0 keeps the host default of 4x CPUs).
	MaxShared int
	// Price is the economy layer's charge per instance-hour
	// ($host_price, DESIGN.md §15); zero means unpriced.
	Price float64
	// Spot marks the host as preemptible spot capacity ($host_class).
	Spot bool
}

// archetypes is a small catalogue of late-1990s machine types, matching
// the paper's era (IRIX workstations, Solaris servers, Linux PCs, AIX
// nodes behind LoadLeveler).
var archetypes = []HostSpec{
	{Arch: "mips", OS: "IRIX", OSVer: "5.3", CPUs: 2, MemoryMB: 256, Speed: 0.8, Cost: 2.0},
	{Arch: "mips", OS: "IRIX", OSVer: "6.5", CPUs: 4, MemoryMB: 512, Speed: 1.0, Cost: 2.5},
	{Arch: "sparc", OS: "Solaris", OSVer: "2.6", CPUs: 8, MemoryMB: 1024, Speed: 1.2, Cost: 3.0},
	{Arch: "x86", OS: "Linux", OSVer: "2.2", CPUs: 1, MemoryMB: 128, Speed: 0.9, Cost: 0.5},
	{Arch: "x86", OS: "Linux", OSVer: "2.2", CPUs: 2, MemoryMB: 256, Speed: 1.1, Cost: 0.7},
	{Arch: "rs6000", OS: "AIX", OSVer: "4.3", CPUs: 16, MemoryMB: 2048, Speed: 1.5, Cost: 4.0},
}

// RandomSpecs draws n host specs from the archetype catalogue with
// randomized initial load, spread across the given zones.
func RandomSpecs(rng *rand.Rand, n int, zones ...string) []HostSpec {
	if len(zones) == 0 {
		zones = []string{"z1"}
	}
	specs := make([]HostSpec, n)
	for i := range specs {
		s := archetypes[rng.Intn(len(archetypes))]
		s.Zone = zones[rng.Intn(len(zones))]
		s.Load = 0.1 + 0.5*rng.Float64()
		specs[i] = s
	}
	return specs
}

// EconomySpecs draws n priced host specs for economy campaigns
// (DESIGN.md §15): the archetype fleet with a per-instance-hour price
// proportional to modelled capacity (speed × CPUs), and roughly a third
// of the fleet sold as discounted preemptible spot capacity.
func EconomySpecs(rng *rand.Rand, n int, zones ...string) []HostSpec {
	specs := RandomSpecs(rng, n, zones...)
	for i := range specs {
		s := &specs[i]
		s.Price = 0.05 * s.Speed * float64(s.CPUs)
		if rng.Float64() < 0.3 {
			s.Spot = true
			s.Price *= 0.4
		}
	}
	return specs
}

// UniformSpecs builds n identical Linux/x86 hosts — the homogeneous
// baseline fleet.
func UniformSpecs(n int, cpus int) []HostSpec {
	specs := make([]HostSpec, n)
	for i := range specs {
		specs[i] = HostSpec{Arch: "x86", OS: "Linux", OSVer: "2.2",
			CPUs: cpus, MemoryMB: 1024, Zone: "z1", Speed: 1.0, Cost: 1.0}
	}
	return specs
}

// Fleet is a built synthetic metasystem.
//
// Per-host state is flattened for scale: drawing 100k hosts from a
// six-entry archetype catalogue must not cost 100k full HostSpec records
// and a 100k-entry LOID-keyed map. Specs are interned (catalogue index
// per host, initial load split out), and the LOID→index table is a dense
// slice keyed by the LOID's instance serial — host LOIDs are minted
// sequentially by one runtime, so the table is an array, not a map.
type Fleet struct {
	MS    *core.Metasystem
	Hosts []*host.Host
	// catalog holds each distinct spec shape once (Load zeroed);
	// specIDs[i] is host i's catalogue entry, loads[i] its initial load.
	catalog []HostSpec
	specIDs []int32
	loads   []float32
	// Dense LOID→index table: host i sits at idx[LOID.Instance-idxBase].
	idxDomain string
	idxBase   uint64
	idx       []int32
	procs     []LoadProcess
	rng       *rand.Rand
}

// Build constructs hosts (one per spec) in the metasystem, with one
// shared vault per zone.
func Build(ms *core.Metasystem, rng *rand.Rand, specs []HostSpec) *Fleet {
	f := &Fleet{
		MS:      ms,
		Hosts:   make([]*host.Host, 0, len(specs)),
		specIDs: make([]int32, 0, len(specs)),
		loads:   make([]float32, 0, len(specs)),
		procs:   make([]LoadProcess, len(specs)),
		rng:     rng,
	}
	// One vault per zone; all hosts of a zone share one immutable vault
	// slice rather than allocating a single-element slice each.
	vaults := make(map[string]loid.LOID)
	vaultSlices := make(map[string][]loid.LOID)
	for _, s := range specs {
		if _, ok := vaults[s.Zone]; !ok {
			v := ms.AddVault(vault.Config{Zone: s.Zone})
			vaults[s.Zone] = v.LOID()
			vaultSlices[s.Zone] = []loid.LOID{v.LOID()}
		}
	}
	catIdx := make(map[HostSpec]int32)
	for i, s := range specs {
		h := ms.AddHost(host.Config{
			Arch: s.Arch, OS: s.OS, OSVersion: s.OSVer,
			CPUs: s.CPUs, MemoryMB: s.MemoryMB, Zone: s.Zone,
			CostPerCPU: s.Cost,
			MaxShared:  s.MaxShared,
			Price:      s.Price,
			Spot:       s.Spot,
			Speed:      s.Speed,
			Vaults:     vaultSlices[s.Zone],
		})
		h.SetExternalLoad(s.Load)
		h.Reassess(context.Background())
		f.Hosts = append(f.Hosts, h)

		key := s
		key.Load = 0
		id, ok := catIdx[key]
		if !ok {
			id = int32(len(f.catalog))
			f.catalog = append(f.catalog, key)
			catIdx[key] = id
		}
		f.specIDs = append(f.specIDs, id)
		f.loads = append(f.loads, float32(s.Load))

		l := h.LOID()
		if i == 0 {
			f.idxDomain = l.Domain
			f.idxBase = l.Instance
		}
		f.growIdx(l.Instance)
		f.idx[l.Instance-f.idxBase] = int32(i)
	}
	return f
}

// growIdx extends the dense index to cover the given instance serial.
// Host LOIDs are sequential, so this appends a handful of slots at most;
// interleaved non-host minting just leaves -1 holes.
func (f *Fleet) growIdx(instance uint64) {
	for uint64(len(f.idx)) <= instance-f.idxBase {
		f.idx = append(f.idx, -1)
	}
}

// indexOf resolves a host LOID to its fleet position.
func (f *Fleet) indexOf(l loid.LOID) (int, bool) {
	if l.Domain != f.idxDomain || l.Instance < f.idxBase {
		return 0, false
	}
	off := l.Instance - f.idxBase
	if off >= uint64(len(f.idx)) || f.idx[off] < 0 {
		return 0, false
	}
	i := int(f.idx[off])
	// Guard against a foreign LOID whose serial collides (e.g. a Vault
	// minted between hosts): the slot must name this host.
	if f.Hosts[i].LOID() != l {
		return 0, false
	}
	return i, true
}

// specAt reconstructs host i's full spec from the interned form.
func (f *Fleet) specAt(i int) HostSpec {
	s := f.catalog[f.specIDs[i]]
	s.Load = float64(f.loads[i])
	return s
}

// Size returns the number of hosts in the fleet.
func (f *Fleet) Size() int { return len(f.Hosts) }

// SpecOf returns the spec of the host with the given LOID.
func (f *Fleet) SpecOf(l loid.LOID) (HostSpec, bool) {
	i, ok := f.indexOf(l)
	if !ok {
		return HostSpec{}, false
	}
	return f.specAt(i), true
}

// LoadProcess evolves one host's background load per step.
type LoadProcess interface {
	Next(rng *rand.Rand, current float64) float64
}

// RandomWalk perturbs load by a uniform step in [-Step, +Step], clamped
// to [Min, Max].
type RandomWalk struct {
	Step     float64
	Min, Max float64
}

// Next implements LoadProcess.
func (w RandomWalk) Next(rng *rand.Rand, cur float64) float64 {
	nxt := cur + (rng.Float64()*2-1)*w.Step
	return math.Max(w.Min, math.Min(w.Max, nxt))
}

// Sinusoid models daily-cycle load: it ignores the current value and
// follows Base + Amp*sin(phase), advancing by Omega per step.
type Sinusoid struct {
	Base, Amp, Omega float64
	phase            float64
}

// Next implements LoadProcess.
func (s *Sinusoid) Next(_ *rand.Rand, _ float64) float64 {
	s.phase += s.Omega
	v := s.Base + s.Amp*math.Sin(s.phase)
	return math.Max(0, v)
}

// Spiky stays at Quiet load but jumps to Spike with probability P per
// step — the overload events the Monitor experiments need.
type Spiky struct {
	Quiet, Spike, P float64
}

// Next implements LoadProcess.
func (s Spiky) Next(rng *rand.Rand, _ float64) float64 {
	if rng.Float64() < s.P {
		return s.Spike
	}
	return s.Quiet
}

// SetProcess attaches a load process to host i.
func (f *Fleet) SetProcess(i int, p LoadProcess) { f.procs[i] = p }

// SetAllProcesses attaches a process factory to every host.
func (f *Fleet) SetAllProcesses(mk func(i int) LoadProcess) {
	for i := range f.procs {
		f.procs[i] = mk(i)
	}
}

// Step advances every host's background load one tick and reassesses
// (pushing fresh state to the Collection and evaluating triggers).
func (f *Fleet) Step(ctx context.Context) {
	for i, h := range f.Hosts {
		if f.procs[i] != nil {
			h.SetExternalLoad(f.procs[i].Next(f.rng, h.Load()))
		}
		h.Reassess(ctx)
	}
}

// --- Placement quality metrics ---

// TaskCounts tallies mappings per host.
func TaskCounts(mappings []sched.Mapping) map[loid.LOID]int {
	m := make(map[loid.LOID]int)
	for _, mp := range mappings {
		m[mp.Host]++
	}
	return m
}

// Makespan estimates completion time for equal-size tasks of the given
// duration under the fleet's speed/load model: each host processes its
// assigned tasks across its CPUs at speed Speed/(1+load).
func (f *Fleet) Makespan(mappings []sched.Mapping, taskDur time.Duration) time.Duration {
	var worst time.Duration
	for hostL, n := range TaskCounts(mappings) {
		i, ok := f.indexOf(hostL)
		if !ok {
			continue
		}
		s := f.specAt(i)
		cpus := s.CPUs
		if cpus < 1 {
			cpus = 1
		}
		speed := s.Speed
		if speed <= 0 {
			speed = 1
		}
		load := f.Hosts[i].Load()
		waves := math.Ceil(float64(n) / float64(cpus))
		t := time.Duration(waves * float64(taskDur) * (1 + load) / speed)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Imbalance returns the coefficient max/mean of per-host task counts
// normalized by CPUs; 1.0 is perfectly balanced.
func (f *Fleet) Imbalance(mappings []sched.Mapping) float64 {
	counts := TaskCounts(mappings)
	if len(counts) == 0 {
		return 0
	}
	var weights []float64
	var sum float64
	for hostL, n := range counts {
		i, ok := f.indexOf(hostL)
		if !ok {
			continue
		}
		cpus := f.catalog[f.specIDs[i]].CPUs
		if cpus < 1 {
			cpus = 1
		}
		w := float64(n) / float64(cpus)
		weights = append(weights, w)
		sum += w
	}
	if len(weights) == 0 || sum == 0 {
		return 0
	}
	mean := sum / float64(len(weights))
	maxW := 0.0
	for _, w := range weights {
		maxW = math.Max(maxW, w)
	}
	return maxW / mean
}

// CrossZoneFraction is the share of mappings landing outside the
// majority zone — a locality measure for co-allocation experiments.
func (f *Fleet) CrossZoneFraction(mappings []sched.Mapping) float64 {
	if len(mappings) == 0 {
		return 0
	}
	zones := make(map[string]int)
	for _, m := range mappings {
		if s, ok := f.SpecOf(m.Host); ok {
			zones[s.Zone]++
		}
	}
	best := 0
	for _, n := range zones {
		if n > best {
			best = n
		}
	}
	return 1 - float64(best)/float64(len(mappings))
}
