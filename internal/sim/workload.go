package sim

import (
	"fmt"
	"math/rand"
	"time"

	"legion/internal/loid"
	"legion/internal/sched"
	"legion/internal/scheduler"
)

// Workload describes one application family from the paper's §4.3
// ("MPI-based or PVM-based simulations, parameter space studies, and
// other modeling applications") as a placement request plus the metadata
// experiments need to judge the placement.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Request is the placement problem handed to a Generator.
	Request scheduler.Request
	// TaskDuration is the per-task compute time for the makespan model.
	TaskDuration time.Duration
	// GridRows/GridCols are non-zero for stencil workloads (edge-cut
	// metrics apply).
	GridRows, GridCols int
}

// IsGrid reports whether the workload has stencil structure.
func (w Workload) IsGrid() bool { return w.GridRows > 0 && w.GridCols > 0 }

// defaultSpec is the reservation shape workloads use unless overridden.
func defaultSpec() sched.ReservationSpec {
	return sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour}
}

// BagOfTasks builds an embarrassingly-parallel workload: n independent
// instances of one class.
func BagOfTasks(class loid.LOID, n int, taskDur time.Duration) Workload {
	return Workload{
		Name: fmt.Sprintf("bag-of-tasks(%d)", n),
		Request: scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class, Count: n}},
			Res:     defaultSpec(),
		},
		TaskDuration: taskDur,
	}
}

// StencilApp builds a rows x cols nearest-neighbour grid application —
// the §4.3 MPI ocean-simulation shape.
func StencilApp(class loid.LOID, rows, cols int, stepDur time.Duration) Workload {
	return Workload{
		Name: fmt.Sprintf("stencil(%dx%d)", rows, cols),
		Request: scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class, Count: rows * cols}},
			Res:     defaultSpec(),
		},
		TaskDuration: stepDur,
		GridRows:     rows,
		GridCols:     cols,
	}
}

// ParamSweep builds a parameter-space study: points independent tasks
// with randomized per-task durations in [minDur, maxDur] (study points
// vary in cost); the returned durations align with the request's
// instance order.
func ParamSweep(class loid.LOID, points int, minDur, maxDur time.Duration, rng *rand.Rand) (Workload, []time.Duration) {
	durs := make([]time.Duration, points)
	span := int64(maxDur - minDur)
	var total time.Duration
	for i := range durs {
		d := minDur
		if span > 0 {
			d += time.Duration(rng.Int63n(span + 1))
		}
		durs[i] = d
		total += d
	}
	mean := time.Duration(0)
	if points > 0 {
		mean = total / time.Duration(points)
	}
	return Workload{
		Name: fmt.Sprintf("param-sweep(%d)", points),
		Request: scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class, Count: points}},
			Res:     defaultSpec(),
		},
		TaskDuration: mean,
	}, durs
}

// WeightedMakespan is Makespan generalized to per-task durations: task i
// (in mapping order) costs durs[i]. Each host's tasks are processed
// greedily across its CPUs at speed Speed/(1+load) — an LPT-free but
// deterministic model adequate for scheduler-shape comparisons.
func (f *Fleet) WeightedMakespan(mappings []sched.Mapping, durs []time.Duration) time.Duration {
	if len(mappings) != len(durs) {
		panic("sim: durations do not match mappings")
	}
	// Sum work per host, then divide by capacity: a fluid approximation
	// that preserves ordering between placements.
	work := map[loid.LOID]time.Duration{}
	for i, m := range mappings {
		work[m.Host] += durs[i]
	}
	var worst time.Duration
	for hostL, w := range work {
		i, ok := f.indexOf(hostL)
		if !ok {
			continue
		}
		s := f.specAt(i)
		cpus := s.CPUs
		if cpus < 1 {
			cpus = 1
		}
		speed := s.Speed
		if speed <= 0 {
			speed = 1
		}
		load := f.Hosts[i].Load()
		t := time.Duration(float64(w) * (1 + load) / (float64(cpus) * speed))
		if t > worst {
			worst = t
		}
	}
	return worst
}
