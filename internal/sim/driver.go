package sim

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"legion/internal/classobj"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vclock"
)

// ArrivalProcess names how the Driver spaces placement arrivals.
type ArrivalProcess int

// Arrival processes.
const (
	// Poisson draws exponential inter-arrival gaps with mean 1/Rate —
	// independent clients, the honest open-loop default.
	Poisson ArrivalProcess = iota
	// Uniform fires exactly every 1/Rate — a metronome, useful when an
	// experiment wants latency variance attributable to the system alone.
	Uniform
	// Bursty fires BurstSize arrivals back-to-back, then idles so the
	// long-run rate still averages Rate — flash-crowd shapes.
	Bursty
)

// DriverConfig shapes one open-loop placement workload replay.
type DriverConfig struct {
	// Clock paces arrivals and measures latency; nil means the
	// metasystem runtime's clock. Under a *vclock.Virtual the whole run
	// happens in virtual time: call Drive from a clock-registered
	// goroutine (vclock.Virtual.Run).
	Clock vclock.Clock
	// Rate is the mean arrival rate in requests per virtual second.
	Rate float64
	// Requests is the total number of placements to offer.
	Requests int
	// Arrivals picks the arrival process; default Poisson.
	Arrivals ArrivalProcess
	// BurstSize is the arrivals per burst for Bursty; <= 1 degenerates
	// to Uniform.
	BurstSize int
	// Seed drives the arrival gaps and every placement's random choices.
	// Each request r uses an independent stream derived from (Seed, r),
	// so placement decisions do not depend on goroutine interleaving —
	// the property that lets a virtual-time replay be deterministic.
	Seed int64
	// Instances per placement; zero means 1.
	Instances int
	// Deadline bounds each request (client patience); zero = unbounded.
	Deadline time.Duration
	// Priority stamps every request's reservation spec.
	Priority int
	// Spec, when non-nil, overrides the reservation spec for request i
	// (economy campaigns stamp Tenant/Deadline/Budget per request); nil
	// keeps the default shared hour-long reusable spec with Priority.
	Spec func(i int) sched.ReservationSpec
	// Generator computes schedules; nil means scheduler.Random{}.
	Generator scheduler.Generator
	// Wrapper bounds the Figure 9 retry protocol; zero limits default to
	// the storm's tight (2 scheduling rounds, 1 enactment try) so an
	// overloaded run fails fast instead of multiplying offered load.
	Wrapper scheduler.Wrapper
	// SnapshotTTL bounds host-snapshot staleness: placements within the
	// TTL share one parsed Collection snapshot (scheduler.HostCache)
	// instead of re-reading the whole directory per request. Zero means
	// 5s — commensurate with the Collection's own pull interval, per the
	// §3.2 staleness license. Negative disables caching.
	SnapshotTTL time.Duration
	// KeepInstances leaves successful placements running instead of
	// tearing them down; default false so capacity is conserved and the
	// post-run audit expects an empty metasystem.
	KeepInstances bool
	// Observe, when non-nil, is called with each successful placement's
	// outcome (request index, resolved schedule) before teardown. It
	// runs on the placement's goroutine and must be safe for concurrent
	// use; economy campaigns judge per-request deadline fit here.
	Observe func(i int, out *scheduler.Outcome)
	// Progress, when non-nil, is called after every arrival with
	// (offered, total).
	Progress func(done, total int)
}

// DriverResult aggregates one replay.
type DriverResult struct {
	Offered   int
	Succeeded int
	// Shed counts typed overload refusals; Failed everything else.
	Shed, Failed int
	// Latencies holds each successful placement's latency on the
	// driving clock (virtual time under a virtual clock).
	Latencies []time.Duration
	// Elapsed is the whole replay on the driving clock.
	Elapsed time.Duration
	// CacheHits/CacheMisses report snapshot reuse.
	CacheHits, CacheMisses int64
}

// Goodput is successful placements per second of driving-clock time.
func (r *DriverResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Succeeded) / r.Elapsed.Seconds()
}

// Percentile returns the q-quantile (0 < q <= 1) success latency.
func (r *DriverResult) Percentile(q float64) time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// splitmix is a tiny rand.Source64 (SplitMix64). The driver derives one
// per request: rand.NewSource's generator carries a 4.9kB table, which
// at a million requests is pure GC churn for a handful of draws.
type splitmix struct{ state uint64 }

func (s *splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *splitmix) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *splitmix) Seed(seed int64) { s.state = uint64(seed) }

func isOverloadErr(err error) bool {
	return err != nil && (errors.Is(err, proto.ErrOverload) ||
		strings.Contains(err.Error(), proto.ErrOverload.Error()))
}

// Drive replays an open-loop workload of cfg.Requests placements of the
// given class against the fleet's metasystem, through the production
// pipeline (Generator → Wrapper → Enactor → Hosts), and returns the
// tallied result. Successful placements are torn down unless
// cfg.KeepInstances, so repeated replays see the same capacity and the
// caller's conservation audit can expect an empty site.
func (f *Fleet) Drive(ctx context.Context, class *classobj.Class, cfg DriverConfig) *DriverResult {
	ms := f.MS
	clock := cfg.Clock
	if clock == nil {
		clock = ms.Runtime().Clock()
	}
	if cfg.Instances <= 0 {
		cfg.Instances = 1
	}
	gen := cfg.Generator
	if gen == nil {
		gen = scheduler.Random{}
	}
	if cfg.Wrapper.SchedTryLimit == 0 {
		cfg.Wrapper.SchedTryLimit = 2
	}
	if cfg.Wrapper.EnactTryLimit == 0 {
		cfg.Wrapper.EnactTryLimit = 1
	}
	env := ms.Env()
	var cache *scheduler.HostCache
	if cfg.SnapshotTTL >= 0 {
		ttl := cfg.SnapshotTTL
		if ttl == 0 {
			ttl = 5 * time.Second
		}
		cache = scheduler.NewHostCache(clock, ttl)
		env.Cache = cache
	}
	enactorL := ms.Enactor.LOID()
	rt := ms.Runtime()

	res := &DriverResult{}
	var mu sync.Mutex
	group := clock.NewGroup()
	start := clock.Now()

	fire := func(i int) {
		defer group.Done()
		// Per-request Env: same cache and breakers, independent
		// deterministic random stream.
		envi := *env
		envi.Rand = rand.New(&splitmix{state: uint64(cfg.Seed) ^ (uint64(i)+1)*0xD1342543DE82EF95})
		rctx := ctx
		if cfg.Deadline > 0 {
			var cancel context.CancelFunc
			rctx, cancel = clock.WithTimeout(ctx, cfg.Deadline)
			defer cancel()
		}
		spec := sched.ReservationSpec{
			Share: true, Reuse: true, Duration: time.Hour,
			Priority: cfg.Priority,
		}
		if cfg.Spec != nil {
			spec = cfg.Spec(i)
		}
		t0 := clock.Now()
		out, err := cfg.Wrapper.Run(rctx, &envi, enactorL, gen, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: cfg.Instances}},
			Res:     spec,
		})
		lat := clock.Since(t0)

		if err == nil && out.Success {
			if cfg.Observe != nil {
				cfg.Observe(i, &out)
			}
			if !cfg.KeepInstances {
				// Fresh context: the request deadline may be spent, and a
				// successful placement must not leak because cleanup raced.
				cctx, cancel := clock.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
				for j, insts := range out.Instances {
					for _, inst := range insts {
						_, _ = rt.Call(cctx, out.Feedback.Resolved[j].Class,
							proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
					}
				}
				_ = ms.Enactor.CancelReservations(cctx, out.RequestID)
				cancel()
			}
			mu.Lock()
			res.Succeeded++
			res.Latencies = append(res.Latencies, lat)
			mu.Unlock()
			return
		}
		mu.Lock()
		if isOverloadErr(err) {
			res.Shed++
		} else {
			res.Failed++
		}
		mu.Unlock()
	}

	// Open loop: arrivals keep their schedule no matter how many earlier
	// requests are in flight. Arrival gaps come from their own stream so
	// the schedule does not depend on placement outcomes.
	arrivals := rand.New(&splitmix{state: uint64(cfg.Seed)})
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	burst := cfg.BurstSize
	if burst <= 1 {
		burst = 1
	}
	next := start
	for i := 0; i < cfg.Requests; i++ {
		if d := clock.Until(next); d > 0 {
			if clock.Sleep(ctx, d) != nil {
				break
			}
		}
		group.Add(1)
		res.Offered++
		n := i
		clock.Go(func() { fire(n) })
		if cfg.Progress != nil {
			cfg.Progress(i+1, cfg.Requests)
		}
		switch cfg.Arrivals {
		case Uniform:
			next = next.Add(interval)
		case Bursty:
			if (i+1)%burst == 0 {
				next = next.Add(interval * time.Duration(burst))
			}
		default: // Poisson
			next = next.Add(time.Duration(arrivals.ExpFloat64() * float64(interval)))
		}
	}
	_ = group.Wait(context.Background())
	res.Elapsed = clock.Since(start)
	if cache != nil {
		res.CacheHits, res.CacheMisses = cache.Stats()
	}
	return res
}
