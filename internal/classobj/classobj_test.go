package classobj

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/vault"
)

type env struct {
	rt    *orb.Runtime
	vault *vault.Vault
	host  *host.Host
}

func newEnv(t *testing.T) *env {
	t.Helper()
	rt := orb.NewRuntime("uva")
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	return &env{rt: rt, vault: v, host: h}
}

// reservePlacement grabs a reservation on the env's host for a directed
// placement.
func (e *env) reservePlacement(t *testing.T) proto.Placement {
	t.Helper()
	res, err := e.rt.Call(context.Background(), e.host.LOID(), proto.MethodMakeReservation,
		proto.MakeReservationArgs{
			Vault: e.vault.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
		})
	if err != nil {
		t.Fatal(err)
	}
	return proto.Placement{
		Host:  e.host.LOID(),
		Vault: e.vault.LOID(),
		Token: res.(proto.MakeReservationReply).Token,
	}
}

func TestDirectedPlacement(t *testing.T) {
	e := newEnv(t)
	c := New(e.rt, Config{Name: "Worker"})
	p := e.reservePlacement(t)
	insts, place, err := c.CreateInstance(context.Background(), 3, &p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 3 || place.Host != e.host.LOID() {
		t.Fatalf("created %v on %v", insts, place.Host)
	}
	for _, i := range insts {
		if i.Class != "Worker" {
			t.Errorf("instance class %q", i.Class)
		}
		if res, err := e.rt.Call(context.Background(), i, "ping", nil); err != nil || res != "pong" {
			t.Errorf("instance %v not live: %v", i, err)
		}
		hL, vL, err := c.WhereIs(i)
		if err != nil || hL != e.host.LOID() || vL != e.vault.LOID() {
			t.Errorf("WhereIs(%v) = %v %v %v", i, hL, vL, err)
		}
	}
	if got := c.Instances(); len(got) != 3 {
		t.Errorf("Instances = %v", got)
	}
	if c.Created() != 3 {
		t.Errorf("Created = %d", c.Created())
	}
}

func TestQuickPlacement(t *testing.T) {
	e := newEnv(t)
	// The quick placer grabs a reservation itself — "the Class makes a
	// quick placement decision".
	placer := func(ctx context.Context, c *Class, count int) (proto.Placement, error) {
		res, err := e.rt.Call(ctx, e.host.LOID(), proto.MethodMakeReservation,
			proto.MakeReservationArgs{
				Requester: c.LOID(),
				Vault:     e.vault.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
			})
		if err != nil {
			return proto.Placement{}, err
		}
		return proto.Placement{Host: e.host.LOID(), Vault: e.vault.LOID(),
			Token: res.(proto.MakeReservationReply).Token}, nil
	}
	c := New(e.rt, Config{Name: "Worker", Placer: placer})
	insts, _, err := c.CreateInstance(context.Background(), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("insts = %v", insts)
	}
}

func TestNoPlacerNoPlacement(t *testing.T) {
	e := newEnv(t)
	c := New(e.rt, Config{Name: "Worker"})
	if _, _, err := c.CreateInstance(context.Background(), 1, nil, nil); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("undirected with no placer: %v", err)
	}
}

func TestDirectedPlacementValidation(t *testing.T) {
	e := newEnv(t)
	c := New(e.rt, Config{Name: "Worker", Policy: func(p proto.Placement) error {
		if p.Host.Domain != "uva" {
			return fmt.Errorf("foreign hosts refused")
		}
		return nil
	}})
	// Nil LOIDs rejected.
	bad := proto.Placement{}
	if _, _, err := c.CreateInstance(context.Background(), 1, &bad, nil); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("nil placement: %v", err)
	}
	// Policy refusal.
	foreign := e.reservePlacement(t)
	foreign.Host.Domain = "elsewhere"
	if _, _, err := c.CreateInstance(context.Background(), 1, &foreign, nil); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("policy refusal: %v", err)
	}
	// Valid placement passes policy.
	good := e.reservePlacement(t)
	if _, _, err := c.CreateInstance(context.Background(), 1, &good, nil); err != nil {
		t.Errorf("good placement: %v", err)
	}
}

func TestDirectedPlacementBadToken(t *testing.T) {
	e := newEnv(t)
	c := New(e.rt, Config{Name: "Worker"})
	p := proto.Placement{Host: e.host.LOID(), Vault: e.vault.LOID(),
		Token: reservation.Token{ID: 1, MAC: []byte("forged")}}
	_, _, err := c.CreateInstance(context.Background(), 1, &p, nil)
	if err == nil {
		t.Fatal("forged token accepted")
	}
}

func TestDestroyInstance(t *testing.T) {
	e := newEnv(t)
	c := New(e.rt, Config{Name: "Worker"})
	p := e.reservePlacement(t)
	insts, _, err := c.CreateInstance(context.Background(), 1, &p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DestroyInstance(context.Background(), insts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Call(context.Background(), insts[0], "ping", nil); !errors.Is(err, orb.ErrNotBound) {
		t.Errorf("destroyed instance answers: %v", err)
	}
	if len(c.Instances()) != 0 {
		t.Error("instance list not empty")
	}
	if err := c.DestroyInstance(context.Background(), insts[0]); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("double destroy: %v", err)
	}
}

func TestAdoptAndForget(t *testing.T) {
	e := newEnv(t)
	hc := New(e.rt, Config{Name: "Host"})
	hc.AdoptInstance(e.host.LOID(), loid.Nil, loid.Nil)
	if got := hc.Instances(); len(got) != 1 || got[0] != e.host.LOID() {
		t.Errorf("adopted instances: %v", got)
	}
	hc.ForgetInstance(e.host.LOID())
	if len(hc.Instances()) != 0 {
		t.Error("forget failed")
	}
}

func TestOrbProtocol(t *testing.T) {
	e := newEnv(t)
	c := New(e.rt, Config{Name: "Worker", Impls: []proto.Implementation{
		{Arch: "x86", OS: "Linux", MemoryMB: 64},
		{Arch: "sparc", OS: "Solaris", MemoryMB: 96},
	}})
	ctx := context.Background()
	p := e.reservePlacement(t)

	res, err := e.rt.Call(ctx, c.LOID(), proto.MethodCreateInstance,
		proto.CreateInstanceArgs{Count: 2, Placement: &p})
	if err != nil {
		t.Fatal(err)
	}
	reply := res.(proto.CreateInstanceReply)
	if len(reply.Instances) != 2 || reply.Host != e.host.LOID() {
		t.Fatalf("reply = %+v", reply)
	}

	res, err = e.rt.Call(ctx, c.LOID(), proto.MethodGetImplementations, nil)
	if err != nil || len(res.(proto.ImplementationsReply).Impls) != 2 {
		t.Errorf("impls: %v %v", res, err)
	}
	res, err = e.rt.Call(ctx, c.LOID(), proto.MethodListInstances, nil)
	if err != nil || len(res.(proto.InstancesReply).Instances) != 2 {
		t.Errorf("instances: %v %v", res, err)
	}
	if _, err := e.rt.Call(ctx, c.LOID(), proto.MethodDestroyInstance,
		proto.ObjectArgs{Object: reply.Instances[0]}); err != nil {
		t.Errorf("destroy: %v", err)
	}
	// Bad args.
	for _, m := range []string{proto.MethodCreateInstance, proto.MethodDestroyInstance} {
		if _, err := e.rt.Call(ctx, c.LOID(), m, "bogus"); err == nil {
			t.Errorf("%s accepted bad arg", m)
		}
	}
}

func TestMetaAndName(t *testing.T) {
	e := newEnv(t)
	legionClass := New(e.rt, Config{Name: "Legion"})
	c := New(e.rt, Config{Name: "Worker", Meta: legionClass.LOID()})
	if c.Name() != "Worker" || c.Meta() != legionClass.LOID() {
		t.Errorf("Name/Meta: %v %v", c.Name(), c.Meta())
	}
	if c.LOID().Class != "WorkerClass" {
		t.Errorf("class LOID: %v", c.LOID())
	}
}

func TestNewPanicsOnEmptyName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(orb.NewRuntime("uva"), Config{})
}
