// Package classobj implements Legion Class objects.
//
// The paper (§2.1): "Class objects in Legion serve two functions. As in
// other object-oriented systems, Classes define the types of their
// instances. In Legion, Classes are also active entities, and act as
// managers for their instances. Thus, a Class is the final authority in
// matters pertaining to its instances, including object placement. The
// Class exports the create_instance() method, which is responsible for
// placing an instance on a viable host. create_instance takes an optional
// argument suggesting a placement, which is necessary to implement
// external Schedulers. In the absence of this argument, the Class makes a
// quick (and almost certainly non-optimal) placement decision."
//
// And §3.4: "This method has an optional argument containing an LOID and
// a reservation token. Use of the optional argument allows directed
// placement of objects ... The Class object is still responsible for
// checking the placement for validity and conformance to local policy,
// but the Class does not have to go through the standard placement steps."
package classobj

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/proto"
)

// Errors returned by Class operations.
var (
	// ErrNoPlacement reports that no viable placement could be found or
	// that a directed placement was rejected.
	ErrNoPlacement = errors.New("classobj: no viable placement")
	// ErrUnknownInstance reports an operation on an instance this class
	// does not manage.
	ErrUnknownInstance = errors.New("classobj: unknown instance")
)

// QuickPlacer produces the class's own placement when create_instance is
// called without a directed placement — the "quick (and almost certainly
// non-optimal) placement decision". It must return a placement whose
// Token has already been granted by the host.
type QuickPlacer func(ctx context.Context, c *Class, count int) (proto.Placement, error)

// PlacementPolicy allows a class to refuse directed placements
// ("conformance to local policy"). nil accepts all.
type PlacementPolicy func(p proto.Placement) error

// instanceInfo records where an instance runs.
type instanceInfo struct {
	host  loid.LOID
	vault loid.LOID
}

// Class is a Legion class object.
type Class struct {
	*orb.ServiceObject
	rt   *orb.Runtime
	name string
	meta loid.LOID // this class's own class (LegionClass in Fig 1)

	mu        sync.Mutex
	impls     []proto.Implementation
	instances map[loid.LOID]instanceInfo
	placer    QuickPlacer
	policy    PlacementPolicy

	created int64
}

// Config parameterizes a Class.
type Config struct {
	// Name is the class name; instance LOIDs carry it.
	Name string
	// Meta is the managing class object (LegionClass for top-level
	// classes); may be Nil for the root.
	Meta loid.LOID
	// Impls lists the available implementations; schedulers query these
	// to match hosts.
	Impls []proto.Implementation
	// Placer is the quick-placement fallback; may be nil, in which case
	// undirected create_instance fails.
	Placer QuickPlacer
	// Policy validates directed placements; nil accepts all.
	Policy PlacementPolicy
}

// New creates a Class, registers its methods and itself with rt.
func New(rt *orb.Runtime, cfg Config) *Class {
	if cfg.Name == "" {
		panic("classobj: empty class name")
	}
	c := &Class{
		ServiceObject: orb.NewServiceObject(rt.Mint(cfg.Name + "Class")),
		rt:            rt,
		name:          cfg.Name,
		meta:          cfg.Meta,
		impls:         append([]proto.Implementation(nil), cfg.Impls...),
		instances:     make(map[loid.LOID]instanceInfo),
		placer:        cfg.Placer,
		policy:        cfg.Policy,
	}
	c.installMethods()
	rt.Register(c)
	return c
}

// Name returns the class name.
func (c *Class) Name() string { return c.name }

// Meta returns the LOID of this class's managing class object.
func (c *Class) Meta() loid.LOID { return c.meta }

// SetPlacer replaces the quick-placement fallback.
func (c *Class) SetPlacer(p QuickPlacer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.placer = p
}

// Implementations returns the class's available implementations.
func (c *Class) Implementations() []proto.Implementation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]proto.Implementation(nil), c.impls...)
}

// Instances returns the LOIDs of managed instances, sorted.
func (c *Class) Instances() []loid.LOID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]loid.LOID, 0, len(c.instances))
	for l := range c.instances {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// WhereIs returns the (host, vault) an instance runs on.
func (c *Class) WhereIs(instance loid.LOID) (hostL, vaultL loid.LOID, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	info, ok := c.instances[instance]
	if !ok {
		return loid.Nil, loid.Nil, fmt.Errorf("%w: %v", ErrUnknownInstance, instance)
	}
	return info.host, info.vault, nil
}

// AdoptInstance records an externally created instance (used to build the
// Figure 1 hierarchy, where HostClass manages Host objects the system
// bootstrapped directly).
func (c *Class) AdoptInstance(instance, hostL, vaultL loid.LOID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.instances[instance] = instanceInfo{host: hostL, vault: vaultL}
}

// ForgetInstance removes an instance record without killing the object
// (used during migration when the instance moves hosts).
func (c *Class) ForgetInstance(instance loid.LOID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.instances, instance)
}

// CreateInstance implements create_instance. With placement nil the
// class's QuickPlacer picks a (Host, Vault, Token); otherwise the
// directed placement is validated and used. It returns the instance
// LOIDs started.
func (c *Class) CreateInstance(ctx context.Context, count int, placement *proto.Placement, state *opr.OPR) ([]loid.LOID, proto.Placement, error) {
	if count < 1 {
		count = 1
	}
	var p proto.Placement
	if placement == nil {
		c.mu.Lock()
		placer := c.placer
		c.mu.Unlock()
		if placer == nil {
			return nil, p, fmt.Errorf("%w: no directed placement and no quick placer", ErrNoPlacement)
		}
		var err error
		p, err = placer(ctx, c, count)
		if err != nil {
			return nil, p, fmt.Errorf("%w: quick placement: %v", ErrNoPlacement, err)
		}
	} else {
		p = *placement
		if p.Host.IsNil() || p.Vault.IsNil() {
			return nil, p, fmt.Errorf("%w: directed placement with nil LOID", ErrNoPlacement)
		}
		c.mu.Lock()
		policy := c.policy
		c.mu.Unlock()
		if policy != nil {
			if err := policy(p); err != nil {
				return nil, p, fmt.Errorf("%w: policy: %v", ErrNoPlacement, err)
			}
		}
	}

	// Mint the instance LOIDs; the class is the naming authority for its
	// instances.
	insts := make([]loid.LOID, count)
	for i := range insts {
		insts[i] = c.rt.Mint(c.name)
	}
	res, err := c.rt.Call(ctx, p.Host, proto.MethodStartObject, proto.StartObjectArgs{
		Token:     p.Token,
		Class:     c.LOID(),
		Instances: insts,
		State:     state,
	})
	if err != nil {
		return nil, p, fmt.Errorf("classobj: startObject on %v: %w", p.Host, err)
	}
	reply, ok := res.(proto.StartObjectReply)
	if !ok {
		return nil, p, fmt.Errorf("classobj: unexpected reply %T", res)
	}
	c.mu.Lock()
	for _, inst := range reply.Started {
		c.instances[inst] = instanceInfo{host: p.Host, vault: p.Vault}
	}
	c.created += int64(len(reply.Started))
	c.mu.Unlock()
	return reply.Started, p, nil
}

// DestroyInstance kills a managed instance via its host.
func (c *Class) DestroyInstance(ctx context.Context, instance loid.LOID) error {
	c.mu.Lock()
	info, ok := c.instances[instance]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownInstance, instance)
	}
	if _, err := c.rt.Call(ctx, info.host, proto.MethodKillObject, proto.ObjectArgs{Object: instance}); err != nil {
		return fmt.Errorf("classobj: killObject on %v: %w", info.host, err)
	}
	c.mu.Lock()
	delete(c.instances, instance)
	c.mu.Unlock()
	return nil
}

// Created returns the lifetime count of instances this class started.
func (c *Class) Created() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.created
}

func (c *Class) installMethods() {
	c.Handle(proto.MethodCreateInstance, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.CreateInstanceArgs)
		if !ok {
			return nil, fmt.Errorf("classobj: want CreateInstanceArgs, got %T", arg)
		}
		insts, p, err := c.CreateInstance(ctx, a.Count, a.Placement, a.State)
		if err != nil {
			return nil, err
		}
		return proto.CreateInstanceReply{Instances: insts, Host: p.Host, Vault: p.Vault}, nil
	})
	c.Handle(proto.MethodGetImplementations, func(_ context.Context, _ any) (any, error) {
		return proto.ImplementationsReply{Impls: c.Implementations()}, nil
	})
	c.Handle(proto.MethodListInstances, func(_ context.Context, _ any) (any, error) {
		return proto.InstancesReply{Instances: c.Instances()}, nil
	})
	c.Handle(proto.MethodDestroyInstance, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.ObjectArgs)
		if !ok {
			return nil, fmt.Errorf("classobj: want ObjectArgs, got %T", arg)
		}
		if err := c.DestroyInstance(ctx, a.Object); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
}
