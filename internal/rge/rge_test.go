package rge

import (
	"sync"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
)

var owner = loid.LOID{Domain: "uva", Class: "Host", Instance: 1}

func TestTriggerFiresOnGuardTrue(t *testing.T) {
	ts := NewTriggerSet(owner)
	if err := ts.Define("overload", `$host_load > 0.8`); err != nil {
		t.Fatal(err)
	}
	var got []Event
	ts.RegisterOutcall("overload", func(e Event) { got = append(got, e) })

	attrs := attr.NewSet(attr.Pair{Name: "host_load", Value: attr.Float(0.5)})
	if evs := ts.Evaluate(attrs); len(evs) != 0 || len(got) != 0 {
		t.Fatalf("fired below threshold: %v", evs)
	}
	attrs.Set("host_load", attr.Float(0.9))
	evs := ts.Evaluate(attrs)
	if len(evs) != 1 || len(got) != 1 {
		t.Fatalf("want 1 event, got %d/%d", len(evs), len(got))
	}
	e := got[0]
	if e.Source != owner || e.Trigger != "overload" {
		t.Errorf("event = %+v", e)
	}
	m := attr.FromPairs(e.Attrs)
	if m["host_load"].FloatVal() != 0.9 {
		t.Errorf("event snapshot load = %v", m["host_load"])
	}
}

func TestEdgeTriggeredSemantics(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("hot", `$load > 0.8`)
	attrs := attr.NewSet(attr.Pair{Name: "load", Value: attr.Float(0.9)})

	// First evaluation fires...
	if n := len(ts.Evaluate(attrs)); n != 1 {
		t.Fatalf("first eval fired %d", n)
	}
	// ...but staying high does not re-fire.
	for i := 0; i < 5; i++ {
		if n := len(ts.Evaluate(attrs)); n != 0 {
			t.Fatalf("level-high eval %d fired %d", i, n)
		}
	}
	// Dropping below re-arms; rising again re-fires.
	attrs.Set("load", attr.Float(0.2))
	ts.Evaluate(attrs)
	attrs.Set("load", attr.Float(0.95))
	if n := len(ts.Evaluate(attrs)); n != 1 {
		t.Fatalf("after re-arm fired %d", n)
	}
	if ts.FireCount("hot") != 2 {
		t.Errorf("FireCount = %d, want 2", ts.FireCount("hot"))
	}
}

func TestWildcardOutcall(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("a", `$x > 1`)
	ts.Define("b", `$x > 2`)
	var names []string
	ts.RegisterOutcall("", func(e Event) { names = append(names, e.Trigger) })
	ts.Evaluate(attr.NewSet(attr.Pair{Name: "x", Value: attr.Int(3)}))
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("wildcard saw %v, want [a b] (deterministic order)", names)
	}
}

func TestMultipleOutcallsPerTrigger(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("t", `true`)
	n := 0
	ts.RegisterOutcall("t", func(Event) { n++ })
	ts.RegisterOutcall("t", func(Event) { n++ })
	ts.Evaluate(attr.NewSet())
	if n != 2 {
		t.Errorf("outcalls run %d times, want 2", n)
	}
}

func TestDefineErrors(t *testing.T) {
	ts := NewTriggerSet(owner)
	if err := ts.Define("", "true"); err == nil {
		t.Error("empty name accepted")
	}
	if err := ts.Define("bad", "((("); err == nil {
		t.Error("bad guard accepted")
	}
}

func TestGuardTypeErrorNeverFires(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("bad", `$s and true`) // $s is a string: type error
	attrs := attr.NewSet(attr.Pair{Name: "s", Value: attr.String("x")})
	if n := len(ts.Evaluate(attrs)); n != 0 {
		t.Errorf("type-erroring guard fired %d", n)
	}
	// Fixing the attribute lets the trigger fire (it stayed armed).
	attrs.Set("s", attr.Bool(true))
	if n := len(ts.Evaluate(attrs)); n != 1 {
		t.Errorf("after fix fired %d, want 1", n)
	}
}

func TestRemoveTrigger(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("t", "true")
	if got := ts.Triggers(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Triggers = %v", got)
	}
	ts.Remove("t")
	if got := ts.Triggers(); len(got) != 0 {
		t.Fatalf("after Remove, Triggers = %v", got)
	}
	if n := len(ts.Evaluate(attr.NewSet())); n != 0 {
		t.Errorf("removed trigger fired %d", n)
	}
	ts.Remove("nonexistent") // no-op
}

func TestRedefiningTriggerRearms(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("t", `$x > 0`)
	attrs := attr.NewSet(attr.Pair{Name: "x", Value: attr.Int(1)})
	ts.Evaluate(attrs) // fires, disarms
	ts.Define("t", `$x > 0`)
	if n := len(ts.Evaluate(attrs)); n != 1 {
		t.Errorf("redefined trigger fired %d, want 1", n)
	}
}

func TestVirtualClock(t *testing.T) {
	ts := NewTriggerSet(owner)
	fixed := time.Date(1999, 4, 12, 0, 0, 0, 0, time.UTC) // IPPS '99
	ts.SetClock(func() time.Time { return fixed })
	ts.Define("t", "true")
	evs := ts.Evaluate(attr.NewSet())
	if len(evs) != 1 || !evs[0].Time.Equal(fixed) {
		t.Errorf("event time = %v, want %v", evs[0].Time, fixed)
	}
}

func TestConcurrentEvaluateAndDefine(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("t", `$x > 5`)
	attrs := attr.NewSet(attr.Pair{Name: "x", Value: attr.Int(0)})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			attrs.Set("x", attr.Int(int64(i%10)))
			ts.Evaluate(attrs)
		}
	}()
	for i := 0; i < 100; i++ {
		ts.Define("t2", `$x > 7`)
		ts.Remove("t2")
		ts.RegisterOutcall("t", func(Event) {})
		ts.FireCount("t")
	}
	close(stop)
	wg.Wait()
}

// TestOutcallCanReenterTriggerSet: an outcall may call back into the
// TriggerSet (e.g. the Monitor removing the trigger that fired) without
// deadlocking — firings are collected under the lock but delivered
// outside it.
func TestOutcallCanReenterTriggerSet(t *testing.T) {
	ts := NewTriggerSet(owner)
	ts.Define("once", "true")
	done := make(chan struct{})
	ts.RegisterOutcall("once", func(e Event) {
		ts.Remove("once")
		close(done)
	})
	ts.Evaluate(attr.NewSet())
	select {
	case <-done:
	default:
		t.Fatal("outcall did not run")
	}
	if len(ts.Triggers()) != 0 {
		t.Error("trigger not removed by reentrant outcall")
	}
}

// TestRegisterOutcallKeyedDedupes: re-registering under the same
// (trigger, key) replaces the handler instead of stacking a duplicate —
// the Host-side half of Watch idempotency. Distinct keys and anonymous
// registrations still append.
func TestRegisterOutcallKeyedDedupes(t *testing.T) {
	ts := NewTriggerSet(owner)
	if err := ts.Define("overload", `$host_load > 0.8`); err != nil {
		t.Fatal(err)
	}
	firstCalls, secondCalls := 0, 0
	ts.RegisterOutcallKeyed("overload", "monitor-1", func(Event) { firstCalls++ })
	ts.RegisterOutcallKeyed("overload", "monitor-1", func(Event) { secondCalls++ })
	if n := ts.OutcallCount("overload"); n != 1 {
		t.Fatalf("outcalls after re-registration: %d, want 1", n)
	}

	attrs := attr.NewSet(attr.Pair{Name: "host_load", Value: attr.Float(0.9)})
	ts.Evaluate(attrs)
	if firstCalls != 0 || secondCalls != 1 {
		t.Errorf("replaced handler calls: first=%d second=%d, want 0/1", firstCalls, secondCalls)
	}

	// A different key is a distinct subscriber.
	ts.RegisterOutcallKeyed("overload", "monitor-2", func(Event) {})
	if n := ts.OutcallCount("overload"); n != 2 {
		t.Errorf("outcalls with two keys: %d, want 2", n)
	}
	// Anonymous registrations always append, even repeated.
	ts.RegisterOutcall("overload", func(Event) {})
	ts.RegisterOutcall("overload", func(Event) {})
	if n := ts.OutcallCount("overload"); n != 4 {
		t.Errorf("outcalls with anonymous appends: %d, want 4", n)
	}
	// An empty key degrades to anonymous append.
	ts.RegisterOutcallKeyed("overload", "", func(Event) {})
	ts.RegisterOutcallKeyed("overload", "", func(Event) {})
	if n := ts.OutcallCount("overload"); n != 6 {
		t.Errorf("outcalls with empty keys: %d, want 6", n)
	}
}
