// Package rge implements the trigger/event portion of Legion's Reflective
// Graph and Event (RGE) mechanism.
//
// The paper (§2.1): "Hosts also contain a mechanism for defining event
// triggers — this allows a Host to, e.g., initiate object migration if its
// load rises above a threshold. Conceptually, triggers are guarded
// statements which raise events if the guard evaluates to a boolean true.
// These events are handled by the Reflective Graph and Event (RGE)
// mechanisms in all Legion objects." And §3.5: "the Monitor can register
// an outcall with the Host Objects; this outcall will be performed when a
// trigger's guard evaluates to true."
//
// Guards are expressions in the Collection query language evaluated over
// the owning object's attribute database, so the same vocabulary used to
// select resources ("$host_load > 0.8") also drives event generation.
// Triggers are edge-triggered: an event fires when the guard transitions
// from false to true, and the trigger re-arms when the guard next
// evaluates false. This prevents an overloaded Host from flooding its
// Monitor with one event per reassessment tick.
package rge

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/query"
)

// Event is raised when a trigger's guard becomes true.
type Event struct {
	// Source names the object whose trigger fired.
	Source loid.LOID
	// Trigger is the name of the trigger that fired.
	Trigger string
	// Attrs is a snapshot of the source's attributes at firing time, so
	// handlers can see the state that caused the event.
	Attrs []attr.Pair
	// Time is the (wall-clock) firing time.
	Time time.Time
}

// Outcall handles an Event. Outcalls run synchronously on the evaluating
// goroutine; long-running work should be handed off by the handler.
type Outcall func(Event)

// trigger is one guarded statement.
type trigger struct {
	name  string
	guard query.Expr
	armed bool // fire only on false->true transition
}

// outcall is one registered handler, optionally carrying an identity key
// so re-registration replaces instead of duplicating.
type outcall struct {
	key string // "" = anonymous, never deduplicated
	fn  Outcall
}

// TriggerSet manages the triggers and registered outcalls of one object.
// It is safe for concurrent use.
type TriggerSet struct {
	owner loid.LOID

	mu       sync.Mutex
	triggers map[string]*trigger
	outcalls map[string][]outcall // trigger name ("" = all) -> handlers
	fired    map[string]int       // per-trigger fire counts, for tests/metrics
	now      func() time.Time
}

// NewTriggerSet creates an empty trigger set owned by the given object.
func NewTriggerSet(owner loid.LOID) *TriggerSet {
	return &TriggerSet{
		owner:    owner,
		triggers: make(map[string]*trigger),
		outcalls: make(map[string][]outcall),
		fired:    make(map[string]int),
		now:      time.Now,
	}
}

// SetClock overrides the event timestamp source; simulations use virtual
// time.
func (ts *TriggerSet) SetClock(now func() time.Time) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.now = now
}

// Define installs (or replaces) a named trigger whose guard is a query-
// language expression over the owner's attributes. A replaced trigger
// starts armed.
func (ts *TriggerSet) Define(name, guardSrc string) error {
	if name == "" {
		return fmt.Errorf("rge: empty trigger name")
	}
	g, err := query.Parse(guardSrc)
	if err != nil {
		return fmt.Errorf("rge: trigger %q: %w", name, err)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.triggers[name] = &trigger{name: name, guard: g, armed: true}
	return nil
}

// Remove deletes a trigger. Removing an unknown trigger is a no-op.
func (ts *TriggerSet) Remove(name string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	delete(ts.triggers, name)
}

// Triggers returns the defined trigger names, sorted.
func (ts *TriggerSet) Triggers() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]string, 0, len(ts.triggers))
	for n := range ts.triggers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterOutcall registers a handler for the named trigger. The empty
// name registers for every trigger. This is the call the paper's Monitor
// makes on Host objects (§3.5). Anonymous registrations always append;
// callers that may re-register (a Monitor reconnecting after a network
// blip) should use RegisterOutcallKeyed so one event never fans out N
// times to the same subscriber.
func (ts *TriggerSet) RegisterOutcall(triggerName string, oc Outcall) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.outcalls[triggerName] = append(ts.outcalls[triggerName], outcall{fn: oc})
}

// RegisterOutcallKeyed registers a handler for the named trigger under an
// identity key (typically the subscriber's LOID). A later registration
// with the same (trigger, key) replaces the earlier handler instead of
// appending a duplicate, making repeated Watch calls idempotent.
func (ts *TriggerSet) RegisterOutcallKeyed(triggerName, key string, oc Outcall) {
	if key == "" {
		ts.RegisterOutcall(triggerName, oc)
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for i, existing := range ts.outcalls[triggerName] {
		if existing.key == key {
			ts.outcalls[triggerName][i] = outcall{key: key, fn: oc}
			return
		}
	}
	ts.outcalls[triggerName] = append(ts.outcalls[triggerName], outcall{key: key, fn: oc})
}

// OutcallCount returns how many handlers are registered for the named
// trigger (tests assert Watch idempotency through this).
func (ts *TriggerSet) OutcallCount(triggerName string) int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.outcalls[triggerName])
}

// FireCount returns how many times the named trigger has fired.
func (ts *TriggerSet) FireCount(name string) int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.fired[name]
}

// Evaluate runs every guard against the attribute record and performs the
// outcalls of triggers transitioning false->true. Hosts call this from
// their periodic state reassessment. It returns the events fired.
func (ts *TriggerSet) Evaluate(rec query.Record) []Event {
	ts.mu.Lock()
	type firing struct {
		ev  Event
		ocs []Outcall
	}
	var firings []firing
	names := make([]string, 0, len(ts.triggers))
	for n := range ts.triggers {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic firing order
	var snapshot []attr.Pair
	for _, n := range names {
		tr := ts.triggers[n]
		ok, err := query.Eval(tr.guard, rec)
		if err != nil {
			// A guard with a type error never fires; it stays armed so a
			// later attribute change can still activate it.
			continue
		}
		if !ok {
			tr.armed = true
			continue
		}
		if !tr.armed {
			continue // level still high; already fired
		}
		tr.armed = false
		if snapshot == nil {
			if s, isSet := rec.(*attr.Set); isSet {
				snapshot = s.Snapshot()
			}
		}
		ev := Event{Source: ts.owner, Trigger: tr.name, Attrs: snapshot, Time: ts.now()}
		ts.fired[tr.name]++
		var ocs []Outcall
		for _, oc := range ts.outcalls[tr.name] {
			ocs = append(ocs, oc.fn)
		}
		for _, oc := range ts.outcalls[""] {
			ocs = append(ocs, oc.fn)
		}
		firings = append(firings, firing{ev: ev, ocs: ocs})
	}
	ts.mu.Unlock()

	events := make([]Event, 0, len(firings))
	for _, f := range firings {
		events = append(events, f.ev)
		for _, oc := range f.ocs {
			oc(f.ev)
		}
	}
	return events
}
