package enactor

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
)

// TestEnactRollbackUnderInjectedFaults wounds create_instance partway
// through enactment and verifies all-or-nothing semantics hold under
// transport faults: every already-created object is destroyed, every
// reservation is released, and the system drains to its pre-request
// state.
func TestEnactRollbackUnderInjectedFaults(t *testing.T) {
	e := newEnv(t, 2, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0), e.mapping(1), e.mapping(0))

	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success {
		t.Fatalf("reservations: %+v", fb)
	}

	// The first create_instance succeeds; every later one fails with an
	// injected transport fault until the retry budget (NeverReached
	// retries included) is exhausted.
	var mu sync.Mutex
	creates := 0
	e.rt.SetFaultInjector(func(target loid.LOID, method string) error {
		if method != proto.MethodCreateInstance {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		creates++
		if creates > 1 {
			return orb.ErrInjectedFault
		}
		return nil
	})

	reply := e.enactor.EnactSchedule(ctx, req.ID)
	e.rt.SetFaultInjector(nil)
	if reply.Success {
		t.Fatal("enact succeeded despite persistent create faults")
	}
	if !strings.Contains(reply.Detail, "injected fault") {
		t.Errorf("failure detail lost the cause: %q", reply.Detail)
	}

	// All-or-nothing: the one created object was destroyed again...
	if n := e.hosts[0].RunningCount() + e.hosts[1].RunningCount(); n != 0 {
		t.Errorf("objects leaked after rollback: %d running", n)
	}
	if n := len(e.class.Instances()); n != 0 {
		t.Errorf("class still manages %d instances", n)
	}
	// ...and no reservation stayed held.
	for i, h := range e.hosts {
		h.ReapReservations()
		if n := h.ActiveReservations(); n != 0 {
			t.Errorf("host %d holds %d reservations after rollback", i, n)
		}
	}
	// The failed request is gone: re-enacting it is an error, not a
	// replay.
	if r2 := e.enactor.EnactSchedule(ctx, req.ID); r2.Success {
		t.Error("enact of a rolled-back request succeeded")
	}
}

// TestEnactRetriesTransientCreateFault verifies the inverse: a fault
// that never reached the class object is retried and the enactment
// completes with no duplicate objects.
func TestEnactRetriesTransientCreateFault(t *testing.T) {
	e := newEnv(t, 2, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0), e.mapping(1))

	if fb := e.enactor.MakeReservations(ctx, req); !fb.Success {
		t.Fatalf("reservations: %+v", fb)
	}

	// Exactly one blip on the first create attempt.
	var mu sync.Mutex
	faulted := false
	e.rt.SetFaultInjector(func(target loid.LOID, method string) error {
		if method != proto.MethodCreateInstance {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if !faulted {
			faulted = true
			return orb.ErrInjectedFault
		}
		return nil
	})
	defer e.rt.SetFaultInjector(nil)

	reply := e.enactor.EnactSchedule(ctx, req.ID)
	if !reply.Success {
		t.Fatalf("enact did not absorb a transient create fault: %+v", reply)
	}
	if n := e.hosts[0].RunningCount() + e.hosts[1].RunningCount(); n != 2 {
		t.Errorf("running = %d, want exactly 2 (no duplicates)", n)
	}
}

// TestDisableResilienceAblation pins the pre-resilience behaviour: with
// the layer disabled a single transient fault fails the negotiation
// outright (no retry, no breaker).
func TestDisableResilienceAblation(t *testing.T) {
	rtEnv := newEnv(t, 1, nil)
	e := New(rtEnv.rt, Config{CallTimeout: 2 * time.Second, DisableResilience: true})
	if e.Breakers() != nil {
		t.Fatal("ablation enactor still has breakers")
	}
	ctx := context.Background()

	var mu sync.Mutex
	faulted := false
	rtEnv.rt.SetFaultInjector(func(target loid.LOID, method string) error {
		mu.Lock()
		defer mu.Unlock()
		if method == proto.MethodMakeReservation && !faulted {
			faulted = true
			return orb.ErrInjectedFault
		}
		return nil
	})
	defer rtEnv.rt.SetFaultInjector(nil)

	req := rtEnv.request(rtEnv.mapping(0))
	req.ID = e.NewRequestID()
	fb := e.MakeReservations(ctx, req)
	if fb.Success {
		t.Fatal("single-attempt enactor absorbed a fault it should not retry")
	}

	// Sanity: the resilient default absorbs the same single blip.
	mu.Lock()
	faulted = false
	mu.Unlock()
	e2 := New(rtEnv.rt, Config{CallTimeout: 2 * time.Second,
		Retry: resilient.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}})
	req2 := rtEnv.request(rtEnv.mapping(0))
	req2.ID = e2.NewRequestID()
	if fb2 := e2.MakeReservations(ctx, req2); !fb2.Success {
		t.Fatalf("resilient enactor failed on one blip: %+v", fb2)
	}
}
