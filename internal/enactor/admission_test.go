package enactor

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/vclock"
)

// waitUntil polls cond for up to 2s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionDisabledByDefault(t *testing.T) {
	e := newEnv(t, 1, nil)
	if e.enactor.adm.enabled() {
		t.Fatal("admission gate enabled without MaxInFlight")
	}
	release, err := e.enactor.adm.acquire(context.Background(), "make_reservations", "d", "", 0)
	if err != nil {
		t.Fatalf("disabled gate refused: %v", err)
	}
	release()
}

// TestExpiredContextNeverReachesDownstream is the property test for the
// admission gate's "expired" shed: across many randomized already-dead
// contexts (expired deadline or cancelled, random priority), a
// make_reservations call through the wire-facing handler must never
// perform downstream negotiation work — zero reservations requested at
// the Enactor, zero tokens on any Host — and must refuse with the typed
// proto.ErrOverload.
func TestExpiredContextNeverReachesDownstream(t *testing.T) {
	e := newEnv(t, 2, nil)
	// Rebuild the enactor with the gate enabled.
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 4})
	rng := rand.New(rand.NewSource(11))
	ctxBg := context.Background()

	for i := 0; i < 60; i++ {
		var ctx context.Context
		var cancel context.CancelFunc
		if rng.Intn(2) == 0 {
			// Deadline already in the past by a random margin.
			past := time.Duration(1+rng.Intn(5000)) * time.Microsecond
			ctx, cancel = context.WithDeadline(ctxBg, time.Now().Add(-past))
		} else {
			ctx, cancel = context.WithCancel(ctxBg)
			cancel()
		}
		req := sched.RequestList{
			ID:      enr.NewRequestID(),
			Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(rng.Intn(2))}}},
			Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour, Priority: rng.Intn(5)},
		}
		_, err := e.rt.Call(ctx, enr.LOID(), proto.MethodMakeReservations,
			proto.MakeReservationsArgs{Request: req, RequesterDomain: "dead"})
		if !errors.Is(err, proto.ErrOverload) {
			t.Fatalf("case %d: err = %v, want ErrOverload", i, err)
		}
		cancel()
	}

	if st := enr.TotalStats(); st.ReservationsRequested != 0 {
		t.Fatalf("expired contexts drove %d downstream reservation calls", st.ReservationsRequested)
	}
	for i, h := range e.hosts {
		if n := h.ActiveReservations(); n != 0 {
			t.Fatalf("host %d leaked %d reservations from shed requests", i, n)
		}
	}
	reg := e.rt.Metrics()
	if n := reg.CounterValue("legion_admission_sheds_total", "reason", "expired"); n != 60 {
		t.Fatalf("expired sheds = %v, want 60", n)
	}
}

// TestAdmissionPriorityOrderAndQueueFull fills the single slot and the
// two-deep queue, verifies the overflow shed, and checks that queued
// waiters dispatch highest-priority-first when the slot frees.
func TestAdmissionPriorityOrderAndQueueFull(t *testing.T) {
	e := newEnv(t, 1, nil)
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 1, AdmissionQueue: 2})
	a := enr.adm
	ctx := context.Background()

	holdRelease, err := a.acquire(ctx, "make_reservations", "d0", "", 0)
	if err != nil {
		t.Fatalf("slot acquire: %v", err)
	}

	var order []string
	var orderMu sync.Mutex
	var wg sync.WaitGroup
	spawn := func(name string, prio int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, aerr := a.acquire(ctx, "make_reservations", name, "", prio)
			if aerr != nil {
				t.Errorf("%s shed: %v", name, aerr)
				return
			}
			orderMu.Lock()
			order = append(order, name)
			orderMu.Unlock()
			rel()
		}()
	}
	spawn("low", 1)
	waitUntil(t, "low queued", func() bool { return a.q.QueueLength() == 1 })
	spawn("high", 5)
	waitUntil(t, "high queued", func() bool { return a.q.QueueLength() == 2 })

	// Queue is at capacity: even a top-priority request is shed.
	if _, err := a.acquire(ctx, "make_reservations", "vip", "", 9); !errors.Is(err, proto.ErrOverload) {
		t.Fatalf("overflow acquire: %v, want ErrOverload", err)
	}
	if n := e.rt.Metrics().CounterValue("legion_admission_sheds_total", "reason", "queue_full"); n != 1 {
		t.Fatalf("queue_full sheds = %v, want 1", n)
	}

	holdRelease()
	wg.Wait()
	orderMu.Lock()
	defer orderMu.Unlock()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("dispatch order = %v, want [high low]", order)
	}
}

// TestAdmissionFairShare verifies one domain cannot pack the wait-queue:
// with depth 4 and one active domain its share is 4/(1+1)=2, so a third
// waiter from the same domain is shed while a newcomer domain still gets
// in.
func TestAdmissionFairShare(t *testing.T) {
	e := newEnv(t, 1, nil)
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 1, AdmissionQueue: 4})
	a := enr.adm
	ctx := context.Background()

	holdRelease, err := a.acquire(ctx, "make_reservations", "slot", "", 0)
	if err != nil {
		t.Fatalf("slot acquire: %v", err)
	}
	var wg sync.WaitGroup
	queueUp := func(domain string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, aerr := a.acquire(ctx, "make_reservations", domain, "", 0)
			if aerr != nil {
				t.Errorf("%s waiter shed: %v", domain, aerr)
				return
			}
			rel()
		}()
	}
	queueUp("greedy")
	waitUntil(t, "first greedy queued", func() bool { return a.q.QueueLength() == 1 })
	queueUp("greedy")
	waitUntil(t, "second greedy queued", func() bool { return a.q.QueueLength() == 2 })

	// Greedy is at its share (4 / (1 active + 1) = 2): shed.
	if _, err := a.acquire(ctx, "make_reservations", "greedy", "", 0); !errors.Is(err, proto.ErrOverload) {
		t.Fatalf("over-share acquire: %v, want ErrOverload", err)
	}
	if n := e.rt.Metrics().CounterValue("legion_admission_sheds_total", "reason", "fair_share"); n != 1 {
		t.Fatalf("fair_share sheds = %v, want 1", n)
	}

	// A different domain still gets a queue slot.
	queueUp("meek")
	waitUntil(t, "meek queued", func() bool { return a.q.QueueLength() == 3 })

	holdRelease()
	wg.Wait()
}

// TestAdmissionDeadlineAwareShed verifies a queued-wait estimate beyond
// the request's remaining deadline sheds immediately instead of queuing
// work that will expire in line.
// TestAdmissionDeadlineAwareShed runs the EWMA deadline-shed arithmetic
// on the virtual clock: the doomed/roomy distinction is a deterministic
// comparison of estimated wait against virtual deadlines, and the
// queued-waiter handoff is serialized by the clock engine instead of
// being poll-waited on the wall clock.
func TestAdmissionDeadlineAwareShed(t *testing.T) {
	e := newEnv(t, 1, nil)
	vc := vclock.NewVirtual()
	e.rt.SetClock(vc)
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 1, AdmissionQueue: 8})
	a := enr.adm

	vc.Run(func() {
		ctx := context.Background()
		holdRelease, err := a.acquire(ctx, "make_reservations", "d0", "", 0)
		if err != nil {
			t.Errorf("slot acquire: %v", err)
			return
		}

		// Seed the service-time estimate: one second per call, one slot.
		a.mu.Lock()
		a.ewmaSvcNs = float64(time.Second)
		a.mu.Unlock()

		dctx, cancel := vc.WithTimeout(ctx, 50*time.Millisecond)
		defer cancel()
		if _, err := a.acquire(dctx, "make_reservations", "d1", "", 0); !errors.Is(err, proto.ErrOverload) {
			t.Errorf("doomed-deadline acquire: %v, want ErrOverload", err)
		}
		if n := e.rt.Metrics().CounterValue("legion_admission_sheds_total", "reason", "deadline"); n != 1 {
			t.Errorf("deadline sheds = %v, want 1", n)
		}

		// A deadline with room to wait is queued, not shed.
		roomy, cancel2 := vc.WithTimeout(ctx, 10*time.Second)
		defer cancel2()
		done := make(chan error, 1)
		vc.Go(func() {
			rel, aerr := a.acquire(roomy, "make_reservations", "d1", "", 0)
			if aerr == nil {
				rel()
			}
			done <- aerr
		})
		// One virtual millisecond: the engine starts the waiter, which
		// enqueues and parks, before this sleep returns.
		if err := vc.Sleep(ctx, time.Millisecond); err != nil {
			t.Errorf("sleep: %v", err)
		}
		if n := a.q.QueueLength(); n != 1 {
			t.Errorf("queue length = %d, want 1", n)
		}
		holdRelease()
		if aerr := <-done; aerr != nil {
			t.Errorf("roomy waiter shed: %v", aerr)
		}
	})
}

// TestShedEnactDoesNotPoisonIdempotency: an enact_schedule shed by the
// gate records no outcome, so a later retry (when load clears) still
// enacts successfully.
func TestShedEnactDoesNotPoisonIdempotency(t *testing.T) {
	e := newEnv(t, 1, nil)
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 1, AdmissionQueue: 1})
	ctx := context.Background()

	req := sched.RequestList{
		ID:      enr.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	res, err := e.rt.Call(ctx, enr.LOID(), proto.MethodMakeReservations,
		proto.MakeReservationsArgs{Request: req, RequesterDomain: "uva"})
	if err != nil || !res.(proto.FeedbackReply).Feedback.Success {
		t.Fatalf("make_reservations: %v %+v", err, res)
	}

	// Saturate: hold the slot and the queue, then the enact is shed.
	hold1, err := enr.adm.acquire(ctx, "make_reservations", "x", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		rel, aerr := enr.adm.acquire(ctx, "make_reservations", "y", "", 0)
		if aerr == nil {
			defer rel()
		}
		<-blocked
	}()
	waitUntil(t, "queue filled", func() bool { return enr.adm.q.QueueLength() == 1 })

	_, err = e.rt.Call(ctx, enr.LOID(), proto.MethodEnactSchedule, proto.EnactScheduleArgs{RequestID: req.ID})
	if !errors.Is(err, proto.ErrOverload) {
		t.Fatalf("saturated enact: %v, want ErrOverload", err)
	}

	// Load clears; the retry must succeed (no recorded failed outcome).
	hold1()
	close(blocked)
	res, err = e.rt.Call(ctx, enr.LOID(), proto.MethodEnactSchedule, proto.EnactScheduleArgs{RequestID: req.ID})
	if err != nil {
		t.Fatalf("retry enact: %v", err)
	}
	if r := res.(proto.EnactReply); !r.Success || len(r.Instances) != 1 {
		t.Fatalf("retry enact reply: %+v", r)
	}
}

// TestShedsClassifyPermanentAndNeverOpenBreakers drives shed after shed
// through a resilient caller across a real TCP hop and asserts (a) the
// refusal classifies permanent — no in-place retries burning the budget
// — and (b) the Enactor endpoint's breaker stays closed: a shedding
// server is alive, and opening its breaker would amplify the overload.
func TestShedsClassifyPermanentAndNeverOpenBreakers(t *testing.T) {
	e := newEnv(t, 1, nil)
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 1, AdmissionQueue: 1})
	addr, err := e.rt.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.rt.Close()

	// Saturate the gate from the server side.
	ctx := context.Background()
	hold, err := enr.adm.acquire(ctx, "make_reservations", "local", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	blocked := make(chan struct{})
	defer close(blocked)
	go func() {
		rel, aerr := enr.adm.acquire(ctx, "make_reservations", "local", "", 0)
		if aerr == nil {
			defer rel()
		}
		<-blocked
	}()
	waitUntil(t, "queue filled", func() bool { return enr.adm.q.QueueLength() == 1 })

	remote := orb.NewRuntime("nova")
	defer remote.Close()
	remote.Bind(enr.LOID(), addr)
	breakers := resilient.NewBreakerSet(resilient.BreakerConfig{FailureThreshold: 3})
	caller := resilient.NewCallerWith(remote, resilient.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}, breakers)

	var attempts atomic.Int64
	for i := 0; i < 20; i++ {
		req := sched.RequestList{
			ID:      enr.NewRequestID(),
			Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}}},
			Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
		}
		_, cerr := caller.Call(ctx, enr.LOID(), proto.MethodMakeReservations,
			proto.MakeReservationsArgs{Request: req, RequesterDomain: "nova"})
		attempts.Add(1)
		if cerr == nil {
			t.Fatalf("call %d unexpectedly admitted through a saturated gate", i)
		}
		if errors.Is(cerr, resilient.ErrCircuitOpen) {
			t.Fatalf("call %d: breaker opened by shedding: %v", i, cerr)
		}
		if got := resilient.Classify(cerr); got != resilient.ClassPermanent {
			t.Fatalf("call %d: shed classified %v, want permanent: %v", i, got, cerr)
		}
	}
	if st := breakers.ForLOID(enr.LOID()).State(); st != resilient.Closed {
		t.Fatalf("enactor breaker state = %v after 20 sheds, want Closed", st)
	}
}

// TestAdmissionConcurrentStress hammers the gate from many goroutines
// with mixed domains, priorities, and deadlines (run under -race in CI's
// overload-race job). Afterwards the gate must be fully drained: no
// in-flight slots, empty queue, empty fair-share accounts, and
// admitted + sheds == offered.
func TestAdmissionConcurrentStress(t *testing.T) {
	e := newEnv(t, 1, nil)
	enr := New(e.rt, Config{CallTimeout: 5 * time.Second, MaxInFlight: 4, AdmissionQueue: 8})
	a := enr.adm

	const workers = 16
	const perWorker = 50
	domains := []string{"uva", "nova", "vt", ""}
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				switch rng.Intn(3) {
				case 0:
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(3))*time.Millisecond)
				case 1:
					ctx, cancel = context.WithTimeout(ctx, time.Second)
				}
				rel, err := a.acquire(ctx, "make_reservations", domains[rng.Intn(len(domains))], "", rng.Intn(4))
				if err == nil {
					admitted.Add(1)
					if rng.Intn(2) == 0 {
						time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
					}
					rel()
				} else {
					if !errors.Is(err, proto.ErrOverload) {
						t.Errorf("worker %d: non-overload refusal: %v", w, err)
					}
					shed.Add(1)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	if got := admitted.Load() + shed.Load(); got != workers*perWorker {
		t.Fatalf("admitted %d + shed %d = %d, want %d", admitted.Load(), shed.Load(), got, workers*perWorker)
	}
	st := a.q.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
	a.mu.Lock()
	leftover := len(a.byDomain)
	a.mu.Unlock()
	if leftover != 0 {
		t.Fatalf("fair-share accounts leaked: %d domains still counted", leftover)
	}
	if admitted.Load() == 0 {
		t.Fatal("stress admitted nothing; gate is over-shedding")
	}
}
