package enactor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"legion/internal/loid"
	"legion/internal/proto"
)

// TestConcurrentEnactRunsOnce races many enact_schedule invocations for
// the same request (the orb server dispatches each request on its own
// goroutine, and the Wrapper retries after an attempt timeout while the
// first invocation may still be executing): exactly one create_instance
// pass must run, and every caller must observe the same outcome.
func TestConcurrentEnactRunsOnce(t *testing.T) {
	e := newEnv(t, 2, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0), e.mapping(1))
	if fb := e.enactor.MakeReservations(ctx, req); !fb.Success {
		t.Fatalf("reserve: %+v", fb)
	}

	// Widen the race window: every call now takes a little while, so all
	// callers arrive while the first enactment is still in flight.
	e.rt.SetLatency(10*time.Millisecond, 0)
	defer e.rt.SetLatency(0, 0)

	const callers = 8
	replies := make([]proto.EnactReply, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replies[i] = e.enactor.EnactSchedule(ctx, req.ID)
		}(i)
	}
	wg.Wait()

	for i, r := range replies {
		if !r.Success || len(r.Instances) != 2 {
			t.Fatalf("caller %d: %+v", i, r)
		}
		for j := range r.Instances {
			if r.Instances[j][0] != replies[0].Instances[j][0] {
				t.Errorf("caller %d saw different instance for mapping %d", i, j)
			}
		}
	}
	// Exactly one enactment ran: one instance per mapping, no duplicates
	// leaked by a second concurrent create_instance pass.
	if e.hosts[0].RunningCount() != 1 || e.hosts[1].RunningCount() != 1 {
		t.Errorf("duplicated instances: host0=%d host1=%d",
			e.hosts[0].RunningCount(), e.hosts[1].RunningCount())
	}
}

// TestFailedEnactOutcomeRecorded verifies a failed enactment is final:
// rollback cancelled the reservations, so a retry returns the recorded
// failure without re-running create_instance against dead tokens.
func TestFailedEnactOutcomeRecorded(t *testing.T) {
	e := newEnv(t, 1, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0))
	if fb := e.enactor.MakeReservations(ctx, req); !fb.Success {
		t.Fatalf("reserve: %+v", fb)
	}

	var mu sync.Mutex
	creates := 0
	e.rt.SetFaultInjector(func(target loid.LOID, method string) error {
		if method != proto.MethodCreateInstance {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		creates++
		return errors.New("class object rejects the placement")
	})
	defer e.rt.SetFaultInjector(nil)

	first := e.enactor.EnactSchedule(ctx, req.ID)
	if first.Success {
		t.Fatalf("enact succeeded despite permanent create failure")
	}
	mu.Lock()
	after := creates
	mu.Unlock()

	second := e.enactor.EnactSchedule(ctx, req.ID)
	if second.Success || second.Detail != first.Detail {
		t.Errorf("retry outcome diverged: first=%+v second=%+v", first, second)
	}
	mu.Lock()
	defer mu.Unlock()
	if creates != after {
		t.Errorf("retry re-ran create_instance: %d calls, want %d", creates, after)
	}
}

// TestRequestReaperDropsAbandonedEpisodes: the Wrapper mints a fresh
// request ID per make_reservations transport attempt, so orphaned
// episodes must be swept after the TTL instead of growing without bound
// — while successfully enacted requests are retained.
func TestRequestReaperDropsAbandonedEpisodes(t *testing.T) {
	env := newEnv(t, 1, nil)
	e := New(env.rt, Config{CallTimeout: 5 * time.Second, RequestTTL: 10 * time.Millisecond})
	ctx := context.Background()

	abandoned := env.request(env.mapping(0))
	abandoned.ID = e.NewRequestID()
	if fb := e.MakeReservations(ctx, abandoned); !fb.Success {
		t.Fatalf("reserve abandoned: %+v", fb)
	}
	enacted := env.request(env.mapping(0))
	enacted.ID = e.NewRequestID()
	if fb := e.MakeReservations(ctx, enacted); !fb.Success {
		t.Fatalf("reserve enacted: %+v", fb)
	}
	if r := e.EnactSchedule(ctx, enacted.ID); !r.Success {
		t.Fatalf("enact: %+v", r)
	}

	time.Sleep(20 * time.Millisecond)
	if n := e.ReapRequests(); n != 1 {
		t.Fatalf("reaped %d entries, want 1", n)
	}
	if _, err := e.Enacted(abandoned.ID); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("abandoned episode survived the reaper: err=%v", err)
	}
	if got, err := e.Enacted(enacted.ID); err != nil || len(got) != 1 {
		t.Errorf("enacted episode was reaped: %v %v", got, err)
	}

	// The sweep also runs lazily on MakeReservations.
	again := env.request(env.mapping(0))
	again.ID = e.NewRequestID()
	if fb := e.MakeReservations(ctx, again); !fb.Success {
		t.Fatalf("reserve again: %+v", fb)
	}
	time.Sleep(20 * time.Millisecond)
	final := env.request(env.mapping(0))
	final.ID = e.NewRequestID()
	if fb := e.MakeReservations(ctx, final); !fb.Success {
		t.Fatalf("reserve final: %+v", fb)
	}
	if _, err := e.Enacted(again.ID); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("lazy sweep missed the abandoned episode: err=%v", err)
	}
}

// TestAblationKeepsFullAttemptTimeout pins the ablation semantics: with
// resilience disabled the single attempt gets the whole CallTimeout, not
// CallTimeout/MaxAttempts as a leftover of the retry derivation.
func TestAblationKeepsFullAttemptTimeout(t *testing.T) {
	env := newEnv(t, 1, nil)
	e := New(env.rt, Config{CallTimeout: 30 * time.Second, DisableResilience: true})
	p := e.call.Policy()
	if p.MaxAttempts != 1 {
		t.Errorf("MaxAttempts = %d, want 1", p.MaxAttempts)
	}
	if p.AttemptTimeout != 30*time.Second {
		t.Errorf("AttemptTimeout = %v, want the full 30s CallTimeout", p.AttemptTimeout)
	}

	// The resilient default still splits the budget across attempts.
	e2 := New(env.rt, Config{CallTimeout: 30 * time.Second})
	if p2 := e2.call.Policy(); p2.AttemptTimeout != 10*time.Second {
		t.Errorf("resilient AttemptTimeout = %v, want Budget/3 = 10s", p2.AttemptTimeout)
	}
}
