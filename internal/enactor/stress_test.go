package enactor

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// TestParallelNegotiationStress hammers one Enactor with concurrent
// wide-schedule episodes while a chaos injector faults 20% of the
// reservation and create_instance traffic, and then audits conservation:
// no reservation was double-granted (the Enactor's granted count equals
// the hosts' granted count exactly — injected faults fire before
// dispatch, so a retried call grants at most once per success), every
// running instance is accounted for by a successful enactment, and after
// cancelling everything the hosts drain to zero held reservations. Run
// under -race this also exercises the fan-out paths for data races.
func TestParallelNegotiationStress(t *testing.T) {
	const (
		nHosts    = 12
		workers   = 8
		episodes  = 6 // per worker
		faultRate = 0.20
	)

	reg := telemetry.NewRegistry()
	rt := orb.NewRuntime("uva")
	rt.SetMetrics(reg) // private registry: exact counter equality below
	v := vault.New(rt, vault.Config{Zone: "z1"})
	hosts := make([]*host.Host, nHosts)
	for i := range hosts {
		hosts[i] = host.New(rt, host.Config{
			Arch: "x86", OS: "Linux", CPUs: 64, MemoryMB: 1 << 14, Zone: "z1",
			Vaults: []loid.LOID{v.LOID()},
		})
	}
	class := classobj.New(rt, classobj.Config{Name: "Worker"})
	enr := New(rt, Config{
		CallTimeout: 5 * time.Second,
		Parallelism: 8,
	})

	// Chaos: ~20% of reservation and create calls fail before dispatch
	// (never-reached, so the target does no work — failures cannot leak
	// partial state, which is what makes exact conservation assertable).
	// Cancels and destroys stay clean: cleanup must get through for the
	// drain audit.
	var injMu sync.Mutex
	rng := rand.New(rand.NewSource(42))
	rt.SetFaultInjector(func(_ loid.LOID, method string) error {
		if method != proto.MethodMakeReservation && method != proto.MethodCreateInstance {
			return nil
		}
		injMu.Lock()
		defer injMu.Unlock()
		if rng.Float64() < faultRate {
			return orb.ErrInjectedFault
		}
		return nil
	})

	mapping := func(hi int) sched.Mapping {
		return sched.Mapping{Class: class.LOID(), Host: hosts[hi].LOID(), Vault: v.LOID()}
	}

	var created atomic.Int64 // instances reported by successful enactments
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ep := 0; ep < episodes; ep++ {
				// Wide master over every host, plus a 3-of-n group to
				// exercise the wave-probing path under faults.
				master := sched.Master{}
				for hi := 0; hi < nHosts; hi++ {
					master.Mappings = append(master.Mappings, mapping(hi))
				}
				group := sched.KofN{Class: class.LOID(), K: 3}
				for hi := 0; hi < nHosts; hi++ {
					group.Alternatives = append(group.Alternatives,
						sched.HostVault{Host: hosts[hi].LOID(), Vault: v.LOID()})
				}
				master.KofN = []sched.KofN{group}
				req := sched.RequestList{
					ID:      enr.NewRequestID(),
					Masters: []sched.Master{master},
					Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
				}
				fb := enr.MakeReservations(ctx, req)
				if !fb.Success {
					continue // rolled back internally; audited below
				}
				if (w+ep)%2 == 0 {
					reply := enr.EnactSchedule(ctx, req.ID)
					if reply.Success {
						for _, insts := range reply.Instances {
							created.Add(int64(len(insts)))
						}
					}
					// Release state either way: a successful enactment's
					// reservations are explicitly cancelled; a failed one
					// already rolled back and the cancel reports unknown.
					_ = enr.CancelReservations(ctx, req.ID)
				} else {
					if err := enr.CancelReservations(ctx, req.ID); err != nil {
						t.Errorf("cancel reserved request: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	rt.SetFaultInjector(nil)

	// No double-grant: with never-reached faults the Enactor's view of
	// grants must match the hosts' exactly.
	eg := reg.CounterValue("legion_enactor_reservations_granted_total")
	hg := reg.CounterValue("legion_host_reservations_granted_total")
	if eg != hg {
		t.Errorf("grant conservation: enactor saw %d, hosts granted %d", eg, hg)
	}
	if eg == 0 {
		t.Error("stress run granted nothing; faults drowned the test")
	}

	// Every running object traces to a successful enactment reply.
	running := 0
	for _, h := range hosts {
		running += h.RunningCount()
	}
	if int64(running) != created.Load() {
		t.Errorf("instance conservation: %d running, %d reported created", running, created.Load())
	}
	if n := len(class.Instances()); int64(n) != created.Load() {
		t.Errorf("class manages %d instances, %d reported created", n, created.Load())
	}

	// Token conservation: everything was cancelled or rolled back, so
	// after reaping no host holds a reservation.
	for i, h := range hosts {
		h.ReapReservations()
		if n := h.ActiveReservations(); n != 0 {
			t.Errorf("host %d still holds %d reservations", i, n)
		}
	}
}
