package enactor

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"legion/internal/batchq"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// admission is the Enactor's overload gate: a bounded set of in-flight
// negotiation calls plus a bounded priority wait-queue in front of them.
// Requests that cannot be admitted are shed immediately with a typed
// proto.ErrOverload refusal (never silently queued without bound), so
// under sustained overload the Enactor does a bounded amount of work and
// callers learn to back off — the anti-metastability posture.
//
// Shedding policy, in order:
//
//   - "expired": the caller's context is already done, or its deadline
//     has passed — admitting it would only produce doomed work.
//   - free slot: admitted immediately, regardless of fair-share (work
//     conservation: an idle slot never waits on accounting).
//   - "queue_full": the wait-queue is at capacity.
//   - "fair_share": admitting would give the caller's domain more than
//     its share of the wait-queue (queueDepth / (active domains + 1),
//     min 1), so one chatty Scheduler cannot starve the others.
//   - "tenant_share": the same arithmetic applied per economy tenant
//     (DESIGN.md §15) — a tenant with a deep budget still cannot buy
//     more than its share of the admission queue, so money does not
//     translate into queue monopoly. Requests with no tenant skip this
//     check.
//   - "deadline": the estimated queue wait (EWMA of recent service
//     times scaled by queue position) exceeds the request's remaining
//     deadline budget — the request would expire while waiting.
//
// Queued requests dispatch in priority order (higher sched.Priority
// first, FCFS within a class) via batchq's priority heap.
type admission struct {
	q     *batchq.Queue // nil when admission control is disabled
	slots int
	depth int
	clock vclock.Clock

	mu        sync.Mutex
	byDomain  map[string]int // queued waiters per requester domain
	byTenant  map[string]int // queued waiters per economy tenant
	ewmaSvcNs float64        // EWMA of admitted-call service time

	met admissionMetrics
}

// admissionMetrics caches the gate's telemetry handles.
type admissionMetrics struct {
	reg      *telemetry.Registry
	inflight *telemetry.Gauge
	queued   *telemetry.Gauge
	admitted *telemetry.Counter
	waitTime *telemetry.Histogram
}

// ewmaAlpha weights the newest service-time sample in the EWMA the
// deadline-aware shed uses to estimate queue wait.
const ewmaAlpha = 0.2

// newAdmission builds the gate from the Enactor's config; it returns a
// disabled gate (admit everything, track nothing) when MaxInFlight <= 0.
func newAdmission(rt *orb.Runtime, cfg Config) *admission {
	a := &admission{
		byDomain: make(map[string]int),
		byTenant: make(map[string]int),
		clock:    rt.Clock(),
	}
	reg := rt.Metrics()
	a.met = admissionMetrics{
		reg:      reg,
		inflight: reg.Gauge("legion_admission_inflight"),
		queued:   reg.Gauge("legion_admission_queue_depth"),
		admitted: reg.Counter("legion_admission_admitted_total"),
		waitTime: reg.Histogram("legion_admission_wait_seconds", telemetry.LatencyBuckets),
	}
	if cfg.MaxInFlight <= 0 {
		return a
	}
	a.slots = cfg.MaxInFlight
	a.depth = cfg.AdmissionQueue
	if a.depth <= 0 {
		a.depth = 4 * cfg.MaxInFlight
	}
	a.q = batchq.New(batchq.Config{
		Name:   "enactor-admission",
		Slots:  a.slots,
		Policy: batchq.Priority,
		Clock:  a.clock,
	})
	return a
}

// enabled reports whether the gate actually gates.
func (a *admission) enabled() bool { return a.q != nil }

// shed records one refusal and returns the typed overload error.
func (a *admission) shed(reason, method string, priority int) error {
	a.met.reg.Counter("legion_admission_sheds_total", "reason", reason).Inc()
	a.met.reg.Counter("legion_admission_sheds_by_priority_total",
		"priority", strconv.Itoa(priority)).Inc()
	return fmt.Errorf("%w: %s shed (%s)", proto.ErrOverload, method, reason)
}

// acquire admits or sheds one call. On admission it returns a release
// function the caller must invoke when the call finishes; on a shed it
// returns a proto.ErrOverload-wrapped error. method labels metrics;
// domain, tenant and priority drive fair-share and queue ordering
// (tenant may be empty for economy-unaware callers).
func (a *admission) acquire(ctx context.Context, method, domain, tenant string, priority int) (func(), error) {
	if !a.enabled() {
		return func() {}, nil
	}
	// Doomed work is shed before it costs anything — this is also the
	// backstop that keeps an already-expired context from ever reaching
	// make_reservations for in-process callers the ORB's wire-level
	// fast-fail cannot see.
	if err := ctx.Err(); err != nil {
		return nil, a.shed("expired", method, priority)
	}
	if dl, ok := ctx.Deadline(); ok && !dl.After(a.clock.Now()) {
		return nil, a.shed("expired", method, priority)
	}

	a.mu.Lock()
	st := a.q.Stats()
	mustQueue := st.Running >= a.slots
	if mustQueue {
		if st.Queued >= a.depth {
			a.mu.Unlock()
			return nil, a.shed("queue_full", method, priority)
		}
		// Fair share of the wait-queue: the caller's domain may hold at
		// most depth/(activeDomains+1) queued slots (min 1) — the +1
		// keeps headroom for a domain that has not arrived yet, so one
		// chatty Scheduler can never pack the queue solid and leave a
		// newcomer facing queue_full before fairness can arbitrate. A
		// free execution slot admits regardless — fairness only
		// arbitrates scarcity.
		active := len(a.byDomain)
		if a.byDomain[domain] == 0 {
			active++ // this domain is about to become active
		}
		share := a.depth / (active + 1)
		if share < 1 {
			share = 1
		}
		if a.byDomain[domain] >= share {
			a.mu.Unlock()
			return nil, a.shed("fair_share", method, priority)
		}
		// Per-tenant quota, same arithmetic over the economy tenant
		// rather than the requester domain: several schedulers in one
		// domain working for the same tenant still cannot jointly pack
		// the queue past the tenant's share.
		if tenant != "" {
			activeT := len(a.byTenant)
			if a.byTenant[tenant] == 0 {
				activeT++
			}
			shareT := a.depth / (activeT + 1)
			if shareT < 1 {
				shareT = 1
			}
			if a.byTenant[tenant] >= shareT {
				a.mu.Unlock()
				return nil, a.shed("tenant_share", method, priority)
			}
		}
		// Deadline-aware shed: refuse now if the expected wait alone
		// would blow the caller's deadline. Expected wait ≈ EWMA service
		// time × (queue position) / slots; position is pessimistically
		// the whole current queue (priority may let us jump it, so this
		// only sheds when even head-of-line service would be too slow
		// relative to the crowd).
		if dl, ok := ctx.Deadline(); ok && a.ewmaSvcNs > 0 {
			estWait := time.Duration(a.ewmaSvcNs * float64(st.Queued+1) / float64(a.slots))
			if estWait > a.clock.Until(dl) {
				a.mu.Unlock()
				return nil, a.shed("deadline", method, priority)
			}
		}
	}
	a.byDomain[domain]++
	if tenant != "" {
		a.byTenant[tenant]++
	}
	// A Gate never blocks the signaller, so a synchronous dispatch
	// inside Submit is safe; in virtual mode parking on it releases the
	// discrete-event barrier.
	started := a.clock.NewGate()
	id, err := a.q.Submit(method, priority, func(batchq.JobID) { started.Signal() })
	a.mu.Unlock()
	if err != nil {
		a.exitQueue(domain, tenant)
		return nil, a.shed("closed", method, priority)
	}
	a.met.queued.Set(int64(a.q.QueueLength()))

	enqueued := a.clock.Now()
	if started.Wait(ctx) != nil {
		// The caller gave up while queued (or mid-dispatch — Cancel
		// handles both: a queued job is dropped, a just-started one has
		// its slot freed). Either way nothing downstream ran.
		_ = a.q.Cancel(id)
		_ = a.q.Forget(id)
		a.exitQueue(domain, tenant)
		a.met.queued.Set(int64(a.q.QueueLength()))
		return nil, a.shed("expired", method, priority)
	}
	a.exitQueue(domain, tenant)
	a.met.admitted.Inc()
	a.met.waitTime.Observe(a.clock.Since(enqueued).Seconds())
	a.met.inflight.Set(int64(a.q.Stats().Running))
	a.met.queued.Set(int64(a.q.QueueLength()))

	startedAt := a.clock.Now()
	var once sync.Once
	release := func() {
		once.Do(func() {
			_ = a.q.Complete(id)
			_ = a.q.Forget(id)
			a.mu.Lock()
			sample := float64(a.clock.Since(startedAt))
			if a.ewmaSvcNs == 0 {
				a.ewmaSvcNs = sample
			} else {
				a.ewmaSvcNs += ewmaAlpha * (sample - a.ewmaSvcNs)
			}
			a.mu.Unlock()
			a.met.inflight.Set(int64(a.q.Stats().Running))
			a.met.queued.Set(int64(a.q.QueueLength()))
		})
	}
	return release, nil
}

// exitQueue drops one waiter from the domain's and tenant's fair-share
// accounts.
func (a *admission) exitQueue(domain, tenant string) {
	a.mu.Lock()
	if a.byDomain[domain] <= 1 {
		delete(a.byDomain, domain)
	} else {
		a.byDomain[domain]--
	}
	if tenant != "" {
		if a.byTenant[tenant] <= 1 {
			delete(a.byTenant, tenant)
		} else {
			a.byTenant[tenant]--
		}
	}
	a.mu.Unlock()
}
