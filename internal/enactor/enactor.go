// Package enactor implements the Legion Enactor (paper §3.4, Figure 6).
//
// "A Scheduler first passes in the entire set of schedules to the
// make_reservations() call, and waits for feedback. ... If any schedule
// succeeded, the Scheduler can then use the enact_schedule() call to
// request that the Enactor instantiate objects on the reserved resources,
// or the cancel_reservations() method to release the resources."
//
// The Enactor negotiates with the Hosts and Vaults named in a schedule —
// possibly across administrative domains (co-allocation) — walking master
// schedules in order and patching individual failed mappings with variant
// schedules selected through the per-variant bitmaps. Reservations that a
// variant leaves unchanged are kept, avoiding "reservation thrashing (the
// canceling and subsequent remaking of the same reservation)".
//
// Per-resource negotiation calls within one request fan out across hosts
// through a bounded worker pool (Config.Parallelism): each reservation
// round reserves every not-yet-held mapping concurrently and collects
// the failures into one bitmap before selecting a variant, k-of-n groups
// probe their next K-got preferred alternatives per wave, and
// create_instance, rollback and cancellation calls run concurrently too.
// The variant semantics are unchanged from the serial walk — held
// entries are never re-made, and the serial loop never short-circuited a
// round either, so the collected bitmap equals the serial one.
//
// Reservation-making is all-or-nothing per master: if no master can be
// fully reserved, everything obtained along the way is cancelled and the
// feedback classifies the failure (resources / malformed / other).
package enactor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"legion/internal/economy"
	"legion/internal/fanout"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/telemetry"
)

// Errors returned by Enactor operations.
var (
	// ErrUnknownRequest reports an enact/cancel for a request ID with no
	// held reservations.
	ErrUnknownRequest = errors.New("enactor: unknown request")
	// ErrNotReserved reports an enact for a request whose reservations
	// were never successfully made.
	ErrNotReserved = errors.New("enactor: request has no successful reservation set")
)

// Config parameterizes an Enactor.
type Config struct {
	// DefaultDuration applies when a request's ReservationSpec has zero
	// duration; defaults to one hour.
	DefaultDuration time.Duration
	// CallTimeout bounds each per-resource negotiation call (the whole
	// retry budget for that call); defaults to 30 seconds.
	CallTimeout time.Duration
	// Retry shapes per-resource call retries. The zero value means up to
	// 3 attempts with short exponential backoff; transient transport
	// faults on a flaky Host are absorbed here before the Enactor falls
	// back to variant schedules.
	Retry resilient.Policy
	// Breaker shapes the per-Host circuit breaker; the zero value uses
	// resilient defaults. Repeatedly unreachable Hosts fail fast with
	// ErrCircuitOpen instead of absorbing a retry budget per mapping.
	Breaker resilient.BreakerConfig
	// Breakers, when non-nil, is an existing breaker pool to share (e.g.
	// the Metasystem's domain-wide set, so a Host failing in the Enactor
	// fails fast in the scheduler path and vice versa); it overrides
	// Breaker.
	Breakers *resilient.BreakerSet
	// RequestTTL bounds how long a reserved-but-never-enacted episode's
	// state is retained. The Wrapper mints a fresh request ID per
	// make_reservations transport attempt, so an attempt whose success
	// reply was lost leaves an orphan entry here forever; entries older
	// than the TTL are swept (their unconfirmed grants are reclaimed
	// host-side by the confirmation timeout / reservation reaper).
	// Defaults to 5 minutes.
	RequestTTL time.Duration
	// DisableResilience reverts to direct single-attempt calls — the
	// pre-resilience behaviour, kept for ablation experiments.
	DisableResilience bool
	// Parallelism bounds how many per-resource negotiation calls
	// (reservations, k-of-n probes, create_instance, rollbacks and
	// cancellations) run concurrently within one request. Zero means 8;
	// 1 reverts to the serial host-by-host walk (ablation baseline).
	Parallelism int
	// MaxInFlight bounds concurrently executing admission-gated calls
	// (make_reservations and enact_schedule). Zero disables admission
	// control entirely — every call is admitted, matching the
	// pre-admission behaviour.
	MaxInFlight int
	// AdmissionQueue bounds the priority wait-queue in front of the
	// in-flight slots; requests beyond it are shed with
	// proto.ErrOverload. Zero means 4×MaxInFlight.
	AdmissionQueue int
	// Ledger, when non-nil, is the economy accounting the Enactor
	// reconciles (DESIGN.md §15): every granted reservation is charged
	// to the request's tenant at the host-quoted price when the grant is
	// made, and refunded exactly once when the token is cancelled,
	// rolled back, preempted or swept. Nil disables economy accounting
	// (all placements are free).
	Ledger *economy.Ledger
}

// heldRequest is the Enactor's retained state for one scheduling episode.
// resolved and tokens are immutable once the request is published; the
// remaining fields are guarded by the Enactor's mu.
type heldRequest struct {
	resolved []sched.Mapping
	tokens   []reservation.Token
	reserved time.Time // when the reservations were made (TTL sweep)
	priority int       // admission class carried from make_reservations
	domain   string    // requester domain, for fair-share accounting
	tenant   string    // economy tenant, for ledger and tenant quotas
	enacted  [][]loid.LOID
	done     bool
	inflight bool              // an EnactSchedule is executing now
	outcome  *proto.EnactReply // recorded result of the first enactment
}

// Enactor implements the schedule-implementation role. Safe for
// concurrent use; distinct requests negotiate independently.
type Enactor struct {
	*orb.ServiceObject
	rt      *orb.Runtime
	cfg     Config
	call    *resilient.Caller // resilient path for negotiation calls
	cleanup *resilient.Caller // breaker-free path for rollback/cancel

	adm *admission // overload gate for wire-facing calls

	mu       sync.Mutex
	cond     *sync.Cond // signals inflight enactments completing
	requests map[uint64]*heldRequest
	nextID   uint64

	statsMu sync.Mutex
	total   sched.EnactmentStats

	met enactorMetrics
}

// enactorMetrics holds the Enactor's telemetry handles, cached at New so
// the negotiation hot path does no registry lookups.
type enactorMetrics struct {
	spans      *telemetry.SpanLog
	domain     string
	requested  *telemetry.Counter
	granted    *telemetry.Counter
	cancelled  *telemetry.Counter
	variants   *telemetry.Counter
	enactments *telemetry.Counter
	rollbacks  *telemetry.Counter
	mresTime   *telemetry.Histogram
	enactTime  *telemetry.Histogram
}

func newEnactorMetrics(rt *orb.Runtime) enactorMetrics {
	reg := rt.Metrics()
	return enactorMetrics{
		spans:      reg.Spans(),
		domain:     rt.Domain(),
		requested:  reg.Counter("legion_enactor_reservations_requested_total"),
		granted:    reg.Counter("legion_enactor_reservations_granted_total"),
		cancelled:  reg.Counter("legion_enactor_reservations_cancelled_total"),
		variants:   reg.Counter("legion_enactor_variants_tried_total"),
		enactments: reg.Counter("legion_enactor_enactments_total"),
		rollbacks:  reg.Counter("legion_enactor_rollbacks_total"),
		mresTime:   reg.Histogram("legion_enactor_make_reservations_seconds", telemetry.LatencyBuckets),
		enactTime:  reg.Histogram("legion_enactor_enact_schedule_seconds", telemetry.LatencyBuckets),
	}
}

// New creates an Enactor, registers its methods and itself with rt.
func New(rt *orb.Runtime, cfg Config) *Enactor {
	if cfg.DefaultDuration <= 0 {
		cfg.DefaultDuration = time.Hour
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 30 * time.Second
	}
	if cfg.DisableResilience {
		// Applied before AttemptTimeout is derived so the ablation's
		// single attempt keeps the full CallTimeout, matching the
		// pre-resilience behaviour it stands in for.
		cfg.Retry.MaxAttempts = 1
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 3
	}
	if cfg.Retry.Budget <= 0 {
		cfg.Retry.Budget = cfg.CallTimeout
	}
	if cfg.Retry.AttemptTimeout <= 0 {
		// A hung Host must not consume the whole budget in one attempt.
		cfg.Retry.AttemptTimeout = cfg.Retry.Budget / time.Duration(cfg.Retry.MaxAttempts)
	}
	if cfg.RequestTTL <= 0 {
		cfg.RequestTTL = 5 * time.Minute
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	e := &Enactor{
		ServiceObject: orb.NewServiceObject(rt.Mint("Enactor")),
		rt:            rt,
		cfg:           cfg,
		requests:      make(map[uint64]*heldRequest),
		met:           newEnactorMetrics(rt),
		adm:           newAdmission(rt, cfg),
	}
	e.cond = sync.NewCond(&e.mu)
	switch {
	case cfg.DisableResilience:
		e.call = resilient.NewCallerWith(rt, cfg.Retry, nil)
	case cfg.Breakers != nil:
		e.call = resilient.NewCallerWith(rt, cfg.Retry, cfg.Breakers)
	default:
		e.call = resilient.NewCaller(rt, cfg.Retry, cfg.Breaker)
	}
	// Cleanup (rollback destroys, reservation cancels) bypasses the
	// breakers: the failures that trigger a rollback are often exactly
	// what opened the endpoint's breaker, and failing the destroy fast
	// would leak the instances the rollback exists to reclaim. The retry
	// policy still bounds the attempts.
	e.cleanup = resilient.NewCallerWith(rt, cfg.Retry, nil)
	e.installMethods()
	rt.Register(e)
	return e
}

// Breakers exposes the Enactor's per-endpoint breaker states (nil when
// resilience is disabled) — chaos tests and operators read these.
func (e *Enactor) Breakers() *resilient.BreakerSet { return e.call.Breakers() }

// fanOut runs fn(i) for i in [0, n) under the configured parallelism
// bound. Callbacks write results into per-index slots; the callers keep
// all stats accounting on their own goroutine after the join, so the
// shared EnactmentStats never crosses goroutines.
func (e *Enactor) fanOut(n int, fn func(i int)) {
	fanout.Do(e.cfg.Parallelism, n, fn)
}

// NewRequestID mints a fresh request ID for a scheduling episode.
func (e *Enactor) NewRequestID() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextID++
	return e.nextID
}

// TotalStats returns accumulated negotiation statistics across all
// episodes (the thrash-avoidance experiments read these).
func (e *Enactor) TotalStats() sched.EnactmentStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.total
}

func (e *Enactor) accumulate(s sched.EnactmentStats) {
	e.statsMu.Lock()
	e.total.ReservationsRequested += s.ReservationsRequested
	e.total.ReservationsGranted += s.ReservationsGranted
	e.total.ReservationsCancelled += s.ReservationsCancelled
	e.total.VariantsTried += s.VariantsTried
	e.total.MastersTried += s.MastersTried
	e.statsMu.Unlock()
	e.met.requested.Add(int64(s.ReservationsRequested))
	e.met.granted.Add(int64(s.ReservationsGranted))
	e.met.cancelled.Add(int64(s.ReservationsCancelled))
	e.met.variants.Add(int64(s.VariantsTried))
}

// MakeReservations attempts to reserve resources for the request and
// returns LegionScheduleFeedback. On success the Enactor retains the
// reservations for a later EnactSchedule or CancelReservations keyed by
// request.ID.
func (e *Enactor) MakeReservations(ctx context.Context, request sched.RequestList) sched.Feedback {
	return e.makeReservations(ctx, request, "")
}

// makeReservations is MakeReservations plus the requester's domain,
// retained on the held request so a later enact_schedule is accounted
// to the same fair-share bucket and priority class at admission.
func (e *Enactor) makeReservations(ctx context.Context, request sched.RequestList, domain string) sched.Feedback {
	start := time.Now()
	ctx, span := e.met.spans.StartIn(ctx, "enactor/make_reservations", e.met.domain)
	var spanErr error
	defer func() {
		span.Finish(spanErr)
		e.met.mresTime.ObserveSince(start)
	}()

	e.mu.Lock()
	e.reapLocked(e.rt.Clock().Now())
	e.mu.Unlock()

	fb := sched.Feedback{Request: request, MasterIndex: -1}
	if err := request.Validate(); err != nil {
		fb.Reason = sched.FailureMalformed
		fb.Detail = err.Error()
		spanErr = err
		return fb
	}
	spec := request.Res
	if spec.Timeout < 0 {
		// A negative confirmation window is malformed, not "host
		// default": hosts reject it (reservation.ErrBadRequest), and
		// letting it through would burn a full negotiation round to
		// learn that. Same semantics as reservation.Table.Make.
		fb.Reason = sched.FailureMalformed
		fb.Detail = fmt.Sprintf("negative reservation confirmation timeout %v", spec.Timeout)
		spanErr = errors.New(fb.Detail)
		return fb
	}
	if spec.Duration <= 0 {
		spec.Duration = e.cfg.DefaultDuration
	}

	for mi := range request.Masters {
		fb.Stats.MastersTried++
		resolved, tokens, costs, applied, ok := e.tryMaster(ctx, &request.Masters[mi], spec, &fb.Stats)
		if ok {
			if err := e.chargeTokens(ctx, spec, resolved, tokens, costs); err != nil {
				// A budget refusal is terminal for the whole request, not
				// just this master: the tenant cannot pay, and later
				// masters would bill the same account.
				fb.Stats.ReservationsCancelled += len(tokens)
				fb.Reason = sched.FailureResources
				fb.Detail = err.Error()
				spanErr = err
				e.accumulate(fb.Stats)
				return fb
			}
			fb.Success = true
			fb.MasterIndex = mi
			fb.Resolved = resolved
			fb.VariantsApplied = applied
			e.mu.Lock()
			e.requests[request.ID] = &heldRequest{
				resolved: resolved, tokens: tokens, reserved: e.rt.Clock().Now(),
				priority: request.Res.Priority, domain: domain, tenant: spec.Tenant,
			}
			e.mu.Unlock()
			e.accumulate(fb.Stats)
			return fb
		}
	}
	fb.Reason = sched.FailureResources
	fb.Detail = fmt.Sprintf("no master schedule of %d fully reservable", len(request.Masters))
	spanErr = errors.New(fb.Detail)
	e.accumulate(fb.Stats)
	return fb
}

// tryMaster negotiates one master schedule with variant patching. It
// returns the resolved mappings, tokens and per-token host-quoted costs
// on success; on failure it has already cancelled everything it
// obtained.
func (e *Enactor) tryMaster(ctx context.Context, m *sched.Master, spec sched.ReservationSpec, stats *sched.EnactmentStats) ([]sched.Mapping, []reservation.Token, []float64, []int, bool) {
	current := append([]sched.Mapping(nil), m.Mappings...)
	tokens := make([]reservation.Token, len(current))
	costs := make([]float64, len(current))
	held := make([]bool, len(current))
	var applied []int

	cancelAll := func() {
		var idxs []int
		for i := range held {
			if held[i] {
				idxs = append(idxs, i)
			}
		}
		e.fanOut(len(idxs), func(j int) {
			i := idxs[j]
			e.cancelToken(ctx, current[i].Host, tokens[i])
		})
		for _, i := range idxs {
			held[i] = false
		}
		stats.ReservationsCancelled += len(idxs)
	}

	variantCursor := 0
	for {
		// Reserve every mapping not already held, fanned out across the
		// hosts. Failures are collected into one bitmap after the round
		// joins — the same bitmap the serial walk produced, since it
		// never short-circuited a round either — and variant selection
		// runs on the collected result.
		var toReserve []int
		for i := range current {
			if !held[i] {
				toReserve = append(toReserve, i)
			}
		}
		stats.ReservationsRequested += len(toReserve)
		toks := make([]*reservation.Token, len(toReserve))
		tcosts := make([]float64, len(toReserve))
		e.fanOut(len(toReserve), func(j int) {
			toks[j], tcosts[j], _ = e.reserve(ctx, current[toReserve[j]], spec)
		})
		var failedIdx []int
		for j, tok := range toks {
			i := toReserve[j]
			if tok == nil {
				failedIdx = append(failedIdx, i)
				continue
			}
			tokens[i] = *tok
			costs[i] = tcosts[j]
			held[i] = true
			stats.ReservationsGranted++
		}
		if len(failedIdx) == 0 {
			// Base mappings are fully reserved; satisfy the k-of-n
			// equivalence-class groups (§3.3): any K of each group's
			// alternatives, in preference order. Each wave probes exactly
			// the K-got next preferred alternatives concurrently and
			// appends the successes in preference order, so a group never
			// over-reserves and the chosen set matches the serial walk
			// whenever the same probes succeed.
			for gi := range m.KofN {
				g := &m.KofN[gi]
				got := 0
				next := 0
				for got < g.K && next < len(g.Alternatives) {
					wave := g.Alternatives[next:min(next+g.K-got, len(g.Alternatives))]
					next += len(wave)
					stats.ReservationsRequested += len(wave)
					wtoks := make([]*reservation.Token, len(wave))
					wcosts := make([]float64, len(wave))
					e.fanOut(len(wave), func(j int) {
						gm := sched.Mapping{Class: g.Class, Host: wave[j].Host, Vault: wave[j].Vault}
						wtoks[j], wcosts[j], _ = e.reserve(ctx, gm, spec)
					})
					for j, tok := range wtoks {
						if tok == nil {
							continue
						}
						current = append(current, sched.Mapping{Class: g.Class, Host: wave[j].Host, Vault: wave[j].Vault})
						tokens = append(tokens, *tok)
						costs = append(costs, wcosts[j])
						held = append(held, true)
						got++
						stats.ReservationsGranted++
					}
				}
				if got < g.K {
					cancelAll()
					return nil, nil, nil, nil, false
				}
			}
			return current, tokens, costs, applied, true
		}
		failed := sched.NewBitmapOf(len(current), failedIdx...)

		// Select the next variant whose bitmap covers a failed entry.
		vi := m.NextVariant(variantCursor, failed)
		if vi < 0 {
			cancelAll()
			return nil, nil, nil, nil, false
		}
		variantCursor = vi + 1
		stats.VariantsTried++
		applied = append(applied, vi)

		// Apply the variant — but only to entries that actually failed.
		// Entries whose reservations are already held keep them even if
		// the variant offers an alternative: this is how "our default
		// Schedulers and Enactor work together to structure the variant
		// schedules so as to avoid reservation thrashing (the canceling
		// and subsequent remaking of the same reservation)".
		for _, r := range m.Variants[vi].Replacements {
			i := r.Index
			if i < 0 || i >= len(current) || held[i] {
				continue
			}
			current[i] = r.Mapping
		}
	}
}

// reserve asks one Host for one reservation, retrying transient
// transport faults (and failing fast on an open breaker) before the
// caller falls back to variant schedules. A retry after an ambiguous
// failure can double-grant; the orphan grant is unconfirmed and is
// reclaimed by the Host's confirmation timeout / reservation reaper.
// reserve runs on fan-out goroutines, so it touches no shared state —
// the callers do all stats accounting after the round joins. The second
// return is the host-quoted cost of the grant in price units (zero for
// unpriced hosts), which the caller bills to the tenant's ledger.
func (e *Enactor) reserve(ctx context.Context, m sched.Mapping, spec sched.ReservationSpec) (*reservation.Token, float64, error) {
	res, err := e.call.Call(ctx, m.Host, proto.MethodMakeReservation, proto.MakeReservationArgs{
		Requester: e.LOID(),
		Vault:     m.Vault,
		Type:      reservation.Type{Share: spec.Share, Reuse: spec.Reuse},
		Start:     spec.Start,
		Duration:  spec.Duration,
		Timeout:   spec.Timeout,
		Priority:  spec.Priority,
		Tenant:    spec.Tenant,
	})
	if err != nil {
		return nil, 0, err
	}
	reply, ok := res.(proto.MakeReservationReply)
	if !ok {
		return nil, 0, fmt.Errorf("enactor: unexpected reply %T", res)
	}
	return &reply.Token, reply.Cost, nil
}

// chargeTokens bills the request's tenant for every granted token at the
// host-quoted price, after enforcing the request's own budget cap. On
// any refusal it cancels every token (which refunds whatever was already
// charged through the cancelToken choke point), so a request either
// holds fully funded reservations or holds nothing.
func (e *Enactor) chargeTokens(ctx context.Context, spec sched.ReservationSpec, resolved []sched.Mapping, tokens []reservation.Token, costs []float64) error {
	led := e.cfg.Ledger
	if led == nil {
		return nil
	}
	var total float64
	for _, c := range costs {
		total += c
	}
	var err error
	if spec.Budget > 0 && total > spec.Budget {
		err = fmt.Errorf("enactor: schedule cost %.6g exceeds request budget %.6g (tenant %q)",
			total, spec.Budget, spec.Tenant)
	}
	for i := range tokens {
		if err != nil {
			break
		}
		if cerr := led.Charge(spec.Tenant, tokens[i].ID, economy.ToCredits(costs[i])); cerr != nil {
			err = fmt.Errorf("enactor: tenant %q: %w", spec.Tenant, cerr)
		}
	}
	if err == nil {
		return nil
	}
	e.fanOut(len(tokens), func(i int) {
		e.cancelToken(ctx, resolved[i].Host, tokens[i])
	})
	return err
}

// cancelToken releases one reservation, retrying transient faults and
// tolerating final failure (the host may be gone; its confirmation
// timeout or reservation reaper will reclaim the grant). Like reserve,
// it is called from fan-out goroutines and touches no shared state.
// Cancellation is the ledger's refund choke point: every path that gives
// a token up — variant cancelAll, rollback, CancelReservations, a failed
// charge — funnels through here, and Refund is exactly-once per token,
// so the refund lands even if the cancel RPC itself is lost (the host's
// reaper reclaims the grant; the tenant is not billed for it).
func (e *Enactor) cancelToken(ctx context.Context, hostL loid.LOID, tok reservation.Token) {
	if e.cfg.Ledger != nil {
		e.cfg.Ledger.Refund(tok.ID)
	}
	_, _ = e.cleanup.Call(ctx, hostL, proto.MethodCancelReservation, proto.TokenArgs{Token: tok})
}

// EnactSchedule instantiates the objects of a successfully reserved
// request by invoking create_instance on the class objects named in the
// resolved mappings, passing the directed placement (§3.4 steps 7-9). On
// any failure it rolls back: created instances are destroyed and
// remaining reservations cancelled.
func (e *Enactor) EnactSchedule(ctx context.Context, requestID uint64) (reply proto.EnactReply) {
	start := time.Now()
	ctx, span := e.met.spans.StartIn(ctx, "enactor/enact_schedule", e.met.domain)
	defer func() {
		var spanErr error
		if !reply.Success {
			spanErr = errors.New(reply.Detail)
		}
		span.Finish(spanErr)
		e.met.enactTime.ObserveSince(start)
		e.met.enactments.Inc()
	}()

	e.mu.Lock()
	req, ok := e.requests[requestID]
	if !ok {
		e.mu.Unlock()
		return proto.EnactReply{Success: false, Detail: ErrUnknownRequest.Error()}
	}
	// Exactly one invocation runs the create_instance loop. A concurrent
	// retry (the server dispatches each request on its own goroutine, and
	// the Wrapper re-sends enact_schedule after an attempt timeout while
	// the first invocation may still be executing) waits here for the
	// in-flight enactment rather than racing a second pass against it —
	// which would duplicate running instances and let one invocation's
	// rollback destroy the other's successful enactment.
	for req.inflight {
		e.cond.Wait()
	}
	if req.outcome != nil {
		// Idempotent at-least-once semantics: a caller retrying after a
		// lost reply gets the recorded outcome of the first enactment. A
		// recorded failure is final too — rollback already cancelled the
		// reservations, so re-running could never succeed.
		out := *req.outcome
		e.mu.Unlock()
		return out
	}
	req.inflight = true
	e.mu.Unlock()

	out := e.enact(ctx, req)

	e.mu.Lock()
	req.outcome = &out
	if out.Success {
		req.enacted = out.Instances
		req.done = true
	}
	req.inflight = false
	e.cond.Broadcast()
	e.mu.Unlock()
	return out
}

// enact runs the create_instance loop for a held request. The caller has
// claimed the request's inflight flag, so exactly one enact runs per
// request at a time.
func (e *Enactor) enact(ctx context.Context, req *heldRequest) proto.EnactReply {
	// create_instance is not idempotent (a duplicate leaks a running
	// object), so only faults that provably never reached the class
	// object are retried.
	createPolicy := e.call.Policy()
	createPolicy.Retryable = resilient.NeverReached

	created := make([][]loid.LOID, len(req.resolved))
	errs := make([]error, len(req.resolved))
	e.fanOut(len(req.resolved), func(i int) {
		m := req.resolved[i]
		res, err := e.call.CallPolicy(ctx, createPolicy, m.Class, proto.MethodCreateInstance, proto.CreateInstanceArgs{
			Count: 1,
			Placement: &proto.Placement{
				Host:  m.Host,
				Vault: m.Vault,
				Token: req.tokens[i],
			},
		})
		if err != nil {
			errs[i] = fmt.Errorf("create_instance for mapping %d (%v): %w", i, m, err)
			return
		}
		reply, isReply := res.(proto.CreateInstanceReply)
		if !isReply || len(reply.Instances) == 0 {
			errs[i] = fmt.Errorf("create_instance for mapping %d returned %T", i, res)
			return
		}
		created[i] = reply.Instances
	})
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		// Prefer a root-cause error over a breaker refusal: when one
		// mapping's failures open the class endpoint's breaker, its
		// siblings fail with ErrCircuitOpen — a symptom of the same
		// outage, and useless as a diagnostic on its own.
		if !errors.Is(err, resilient.ErrCircuitOpen) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Concurrent siblings of the failed call run to completion, so
		// rollback destroys every instance that did get created, not
		// just a prefix.
		e.rollback(ctx, req, created)
		return proto.EnactReply{Success: false, Detail: firstErr.Error()}
	}
	return proto.EnactReply{Success: true, Instances: created}
}

// rollback destroys whatever instances were created and cancels the
// remaining (unredeemed or reusable) reservations, fanning the calls
// out across the hosts involved.
func (e *Enactor) rollback(ctx context.Context, req *heldRequest, created [][]loid.LOID) {
	// Detach from the caller's cancellation: the most common reason to
	// be here under overload is that the client's deadline expired
	// mid-enactment, and rollback run under that dead context would
	// fail every destroy/cancel call — leaking the very tokens it
	// exists to reclaim. Trace/span values are kept; only the
	// cancellation signal is dropped, re-bounded by a cleanup budget.
	var cancel context.CancelFunc
	ctx, cancel = e.rt.Clock().WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
	defer cancel()
	ctx, span := e.met.spans.StartIn(ctx, "enactor/rollback", e.met.domain)
	defer span.Finish(nil)
	e.met.rollbacks.Inc()
	type target struct{ class, inst loid.LOID }
	var destroy []target
	for i, insts := range created {
		for _, inst := range insts {
			destroy = append(destroy, target{class: req.resolved[i].Class, inst: inst})
		}
	}
	e.fanOut(len(destroy), func(j int) {
		// Cleanup path: parallel create failures may have opened the class
		// endpoint's breaker, and destroy must still get through.
		_, _ = e.cleanup.Call(ctx, destroy[j].class, proto.MethodDestroyInstance,
			proto.ObjectArgs{Object: destroy[j].inst})
	})
	e.fanOut(len(req.tokens), func(i int) {
		e.cancelToken(ctx, req.resolved[i].Host, req.tokens[i])
	})
	e.accumulate(sched.EnactmentStats{ReservationsCancelled: len(req.tokens)})
}

// CancelReservations releases a request's reservations without enacting.
func (e *Enactor) CancelReservations(ctx context.Context, requestID uint64) error {
	e.mu.Lock()
	req, ok := e.requests[requestID]
	if ok {
		// Never yank reservations out from under a running enactment.
		for req.inflight {
			e.cond.Wait()
		}
		delete(e.requests, requestID)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownRequest, requestID)
	}
	e.fanOut(len(req.tokens), func(i int) {
		e.cancelToken(ctx, req.resolved[i].Host, req.tokens[i])
	})
	e.accumulate(sched.EnactmentStats{ReservationsCancelled: len(req.tokens)})
	return nil
}

// Enacted returns the instances created for a request, per resolved
// mapping, once EnactSchedule has succeeded.
func (e *Enactor) Enacted(requestID uint64) ([][]loid.LOID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	req, ok := e.requests[requestID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownRequest, requestID)
	}
	if !req.done {
		return nil, ErrNotReserved
	}
	return req.enacted, nil
}

// reapLocked deletes abandoned episodes: requests reserved more than
// RequestTTL ago that never successfully enacted (including recorded
// failures the caller stopped retrying). Their unconfirmed grants are
// reclaimed host-side by the confirmation timeout / reservation reaper;
// this sweep bounds the Enactor-side map, which would otherwise grow
// without limit under sustained transport faults (the Wrapper mints a
// fresh request ID per make_reservations attempt). Callers hold e.mu.
func (e *Enactor) reapLocked(now time.Time) int {
	n := 0
	for id, req := range e.requests {
		if req.done || req.inflight {
			continue
		}
		if now.Sub(req.reserved) > e.cfg.RequestTTL {
			// The sweep drops tokens without calling cancelToken (the
			// hosts reclaim them on their own), so it must refund the
			// ledger explicitly or the tenant pays for swept grants.
			if e.cfg.Ledger != nil {
				for _, tok := range req.tokens {
					e.cfg.Ledger.Refund(tok.ID)
				}
			}
			delete(e.requests, id)
			n++
		}
	}
	return n
}

// ReapRequests sweeps abandoned episodes immediately (the sweep also
// runs lazily on every MakeReservations) and reports how many request
// entries were dropped.
func (e *Enactor) ReapRequests() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reapLocked(e.rt.Clock().Now())
}

// requestClass reports the admission class (priority, requester domain,
// economy tenant) recorded when a request's reservations were made; zero
// values for an unknown request (it still passes admission, then fails
// the lookup).
func (e *Enactor) requestClass(requestID uint64) (int, string, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if req, ok := e.requests[requestID]; ok {
		return req.priority, req.domain, req.tenant
	}
	return 0, "", ""
}

// Ledger exposes the Enactor's economy ledger (nil when accounting is
// disabled) — experiments and the account_* wire methods read it.
func (e *Enactor) Ledger() *economy.Ledger { return e.cfg.Ledger }

func (e *Enactor) installMethods() {
	e.Handle(proto.MethodMakeReservations, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.MakeReservationsArgs)
		if !ok {
			return nil, fmt.Errorf("enactor: want MakeReservationsArgs, got %T", arg)
		}
		// The overload gate guards the wire-facing entry point: a shed
		// crosses back as a typed proto.ErrOverload refusal (classified
		// permanent — never a breaker strike), and nothing downstream
		// runs for a shed request, so it can leak no tokens.
		release, err := e.adm.acquire(ctx, "make_reservations", a.RequesterDomain, a.Request.Res.Tenant, a.Request.Res.Priority)
		if err != nil {
			return nil, err
		}
		defer release()
		return proto.FeedbackReply{Feedback: e.makeReservations(ctx, a.Request, a.RequesterDomain)}, nil
	})
	e.Handle(proto.MethodEnactSchedule, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.EnactScheduleArgs)
		if !ok {
			return nil, fmt.Errorf("enactor: want EnactScheduleArgs, got %T", arg)
		}
		// A shed here records no outcome, so a live retry can still
		// enact; if the caller never returns, the held reservations are
		// reclaimed by the hosts' confirmation timeouts and the
		// Enactor's RequestTTL sweep.
		prio, domain, tenant := e.requestClass(a.RequestID)
		release, err := e.adm.acquire(ctx, "enact_schedule", domain, tenant, prio)
		if err != nil {
			return nil, err
		}
		defer release()
		return e.EnactSchedule(ctx, a.RequestID), nil
	})
	e.Handle(proto.MethodCancelReservations, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.CancelReservationsArgs)
		if !ok {
			return nil, fmt.Errorf("enactor: want CancelReservationsArgs, got %T", arg)
		}
		if err := e.CancelReservations(ctx, a.RequestID); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	e.Handle(proto.MethodAccountDeposit, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.AccountDepositArgs)
		if !ok {
			return nil, fmt.Errorf("enactor: want AccountDepositArgs, got %T", arg)
		}
		led := e.cfg.Ledger
		if led == nil {
			return nil, errors.New("enactor: no economy ledger configured")
		}
		led.Open(a.Tenant, economy.Credits(a.Amount))
		return accountReply(led, a.Tenant), nil
	})
	e.Handle(proto.MethodAccountStatus, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.AccountArgs)
		if !ok {
			return nil, fmt.Errorf("enactor: want AccountArgs, got %T", arg)
		}
		led := e.cfg.Ledger
		if led == nil {
			return nil, errors.New("enactor: no economy ledger configured")
		}
		return accountReply(led, a.Tenant), nil
	})
}

// accountReply snapshots one tenant account for the wire.
func accountReply(led *economy.Ledger, tenant string) proto.AccountReply {
	acct := led.Account(tenant)
	return proto.AccountReply{
		Tenant:    tenant,
		Budget:    int64(acct.Budget),
		Spent:     int64(acct.Spent),
		Refunded:  int64(acct.Refunded),
		Remaining: int64(acct.Remaining()),
	}
}
