package enactor

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// env wires hosts, a vault, a class, and an enactor on one runtime.
type env struct {
	rt      *orb.Runtime
	vault   *vault.Vault
	hosts   []*host.Host
	class   *classobj.Class
	enactor *Enactor
}

func newEnv(t *testing.T, nHosts int, mutate func(i int, c *host.Config)) *env {
	t.Helper()
	rt := orb.NewRuntime("uva")
	// A private registry per env keeps counter assertions independent of
	// other tests (and of -count=N reruns) sharing telemetry.Default.
	rt.SetMetrics(telemetry.NewRegistry())
	v := vault.New(rt, vault.Config{Zone: "z1"})
	hosts := make([]*host.Host, nHosts)
	for i := range hosts {
		cfg := host.Config{
			Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
			Vaults: []loid.LOID{v.LOID()},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		hosts[i] = host.New(rt, cfg)
	}
	c := classobj.New(rt, classobj.Config{Name: "Worker"})
	e := New(rt, Config{CallTimeout: 5 * time.Second})
	return &env{rt: rt, vault: v, hosts: hosts, class: c, enactor: e}
}

func (e *env) mapping(hostIdx int) sched.Mapping {
	return sched.Mapping{Class: e.class.LOID(), Host: e.hosts[hostIdx].LOID(), Vault: e.vault.LOID()}
}

func (e *env) request(mappings ...sched.Mapping) sched.RequestList {
	return sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: mappings}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
}

func TestReserveAndEnactSuccess(t *testing.T) {
	e := newEnv(t, 2, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0), e.mapping(1), e.mapping(0))

	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success || fb.MasterIndex != 0 || len(fb.Resolved) != 3 {
		t.Fatalf("feedback: %+v", fb)
	}
	if fb.Stats.ReservationsRequested != 3 || fb.Stats.ReservationsGranted != 3 ||
		fb.Stats.ReservationsCancelled != 0 {
		t.Errorf("stats: %+v", fb.Stats)
	}

	reply := e.enactor.EnactSchedule(ctx, req.ID)
	if !reply.Success {
		t.Fatalf("enact: %+v", reply)
	}
	if len(reply.Instances) != 3 {
		t.Fatalf("instances: %v", reply.Instances)
	}
	// Objects are genuinely running: host 0 has 2, host 1 has 1.
	if e.hosts[0].RunningCount() != 2 || e.hosts[1].RunningCount() != 1 {
		t.Errorf("running: %d, %d", e.hosts[0].RunningCount(), e.hosts[1].RunningCount())
	}
	for _, insts := range reply.Instances {
		for _, inst := range insts {
			if res, err := e.rt.Call(ctx, inst, "ping", nil); err != nil || res != "pong" {
				t.Errorf("instance %v: %v %v", inst, res, err)
			}
		}
	}
	// Enacted() reports the same instance sets.
	got, err := e.enactor.Enacted(req.ID)
	if err != nil || len(got) != 3 {
		t.Errorf("Enacted: %v %v", got, err)
	}
	// Enact is idempotent: a retried call (e.g. after a lost reply)
	// reports the same instances and creates nothing new.
	r2 := e.enactor.EnactSchedule(ctx, req.ID)
	if !r2.Success || len(r2.Instances) != 3 {
		t.Errorf("retried enact: %+v", r2)
	}
	if e.hosts[0].RunningCount() != 2 || e.hosts[1].RunningCount() != 1 {
		t.Errorf("retried enact duplicated objects: %d, %d",
			e.hosts[0].RunningCount(), e.hosts[1].RunningCount())
	}
}

func TestMalformedScheduleFeedback(t *testing.T) {
	e := newEnv(t, 1, nil)
	fb := e.enactor.MakeReservations(context.Background(), sched.RequestList{ID: 1})
	if fb.Success || fb.Reason != sched.FailureMalformed {
		t.Errorf("feedback: %+v", fb)
	}
	fb = e.enactor.MakeReservations(context.Background(), sched.RequestList{
		ID:      2,
		Masters: []sched.Master{{Mappings: []sched.Mapping{{}}}},
	})
	if fb.Success || fb.Reason != sched.FailureMalformed {
		t.Errorf("nil-LOID feedback: %+v", fb)
	}
}

func TestResourceFailureFeedbackAndRollback(t *testing.T) {
	// Host 1 refuses everything via policy.
	e := newEnv(t, 2, func(i int, c *host.Config) {
		if i == 1 {
			c.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: always refuses", host.ErrPolicy)
			}
		}
	})
	ctx := context.Background()
	req := e.request(e.mapping(0), e.mapping(1))
	fb := e.enactor.MakeReservations(ctx, req)
	if fb.Success || fb.Reason != sched.FailureResources {
		t.Fatalf("feedback: %+v", fb)
	}
	// The reservation obtained on host 0 was rolled back (all-or-nothing
	// co-allocation): nothing is held, so a fresh exclusive-style request
	// for the full host succeeds.
	if fb.Stats.ReservationsGranted != 1 || fb.Stats.ReservationsCancelled != 1 {
		t.Errorf("stats: %+v", fb.Stats)
	}
	// Enacting a failed request is refused.
	if r := e.enactor.EnactSchedule(ctx, req.ID); r.Success {
		t.Error("enact of failed request succeeded")
	}
}

func TestVariantPatchingAvoidsThrashing(t *testing.T) {
	// Host 1 is broken; the master maps entries to hosts {0, 1}; a
	// variant redirects entry 1 to host 2. Entry 0's reservation must
	// survive (no cancel+remake).
	e := newEnv(t, 3, func(i int, c *host.Config) {
		if i == 1 {
			c.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: broken host", host.ErrPolicy)
			}
		}
	})
	ctx := context.Background()

	master := sched.Master{Mappings: []sched.Mapping{e.mapping(0), e.mapping(1)}}
	var v sched.Variant
	v.AddReplacement(1, e.mapping(2))
	master.Variants = []sched.Variant{v}

	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{master},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success {
		t.Fatalf("feedback: %+v", fb)
	}
	if len(fb.VariantsApplied) != 1 || fb.VariantsApplied[0] != 0 {
		t.Errorf("variants applied: %v", fb.VariantsApplied)
	}
	if fb.Resolved[1].Host != e.hosts[2].LOID() {
		t.Errorf("resolved entry 1 on %v", fb.Resolved[1].Host)
	}
	// Thrash avoidance: entry 0's token was never cancelled.
	if fb.Stats.ReservationsCancelled != 0 {
		t.Errorf("cancelled = %d, want 0 (no thrashing)", fb.Stats.ReservationsCancelled)
	}
	// 3 requested (0 ok, 1 fail, then 2 ok), 2 granted.
	if fb.Stats.ReservationsRequested != 3 || fb.Stats.ReservationsGranted != 2 {
		t.Errorf("stats: %+v", fb.Stats)
	}
	if fb.Stats.VariantsTried != 1 {
		t.Errorf("variants tried: %d", fb.Stats.VariantsTried)
	}

	reply := e.enactor.EnactSchedule(ctx, req.ID)
	if !reply.Success {
		t.Fatalf("enact: %+v", reply)
	}
	if e.hosts[0].RunningCount() != 1 || e.hosts[2].RunningCount() != 1 {
		t.Error("objects not on expected hosts")
	}
}

func TestVariantKeepsHeldEntriesEvenWhenCovered(t *testing.T) {
	// Master maps both entries, entry 1's host (1) is broken; the
	// variant offers alternatives for BOTH entries (0 -> host 2 too).
	// Thrash avoidance: entry 0's successful reservation is kept — only
	// the failed entry moves — so nothing is cancelled and remade.
	e := newEnv(t, 3, func(i int, c *host.Config) {
		if i == 1 {
			c.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: broken", host.ErrPolicy)
			}
		}
	})
	master := sched.Master{Mappings: []sched.Mapping{e.mapping(0), e.mapping(1)}}
	var v sched.Variant
	v.AddReplacement(0, e.mapping(2))
	v.AddReplacement(1, e.mapping(2))
	master.Variants = []sched.Variant{v}
	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{master},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(context.Background(), req)
	if !fb.Success {
		t.Fatalf("feedback: %+v", fb)
	}
	if fb.Stats.ReservationsCancelled != 0 {
		t.Errorf("cancelled = %d, want 0 (thrash avoidance keeps held entries)",
			fb.Stats.ReservationsCancelled)
	}
	if fb.Resolved[0].Host != e.hosts[0].LOID() || fb.Resolved[1].Host != e.hosts[2].LOID() {
		t.Errorf("resolved: %v", fb.Resolved)
	}
}

func TestMultipleMastersFallthrough(t *testing.T) {
	// First master targets only the broken host; second targets a good
	// one.
	e := newEnv(t, 2, func(i int, c *host.Config) {
		if i == 0 {
			c.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: broken", host.ErrPolicy)
			}
		}
	})
	req := sched.RequestList{
		ID: e.enactor.NewRequestID(),
		Masters: []sched.Master{
			{Mappings: []sched.Mapping{e.mapping(0)}},
			{Mappings: []sched.Mapping{e.mapping(1)}},
		},
		Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(context.Background(), req)
	if !fb.Success || fb.MasterIndex != 1 {
		t.Fatalf("feedback: %+v", fb)
	}
	if fb.Stats.MastersTried != 2 {
		t.Errorf("masters tried: %d", fb.Stats.MastersTried)
	}
}

func TestCancelReservations(t *testing.T) {
	e := newEnv(t, 1, nil)
	ctx := context.Background()
	// Space-sharing: only one reservation fits, proving cancel released it.
	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}}},
		Res:     sched.ReservationSpec{Share: false, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success {
		t.Fatal("reserve failed")
	}
	// A second exclusive request conflicts while the first is held.
	req2 := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}}},
		Res:     sched.ReservationSpec{Share: false, Reuse: true, Duration: time.Hour},
	}
	if fb2 := e.enactor.MakeReservations(ctx, req2); fb2.Success {
		t.Fatal("conflicting exclusive reservation granted")
	}
	if err := e.enactor.CancelReservations(ctx, req.ID); err != nil {
		t.Fatal(err)
	}
	// Now it fits.
	req3 := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}}},
		Res:     sched.ReservationSpec{Share: false, Reuse: true, Duration: time.Hour},
	}
	if fb3 := e.enactor.MakeReservations(ctx, req3); !fb3.Success {
		t.Fatal("reserve after cancel failed")
	}
	if err := e.enactor.CancelReservations(ctx, req.ID); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("double cancel: %v", err)
	}
}

func TestEnactUnknownRequest(t *testing.T) {
	e := newEnv(t, 1, nil)
	if r := e.enactor.EnactSchedule(context.Background(), 999); r.Success {
		t.Error("unknown request enacted")
	}
	if _, err := e.enactor.Enacted(999); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("Enacted(999): %v", err)
	}
}

func TestEnactRollbackOnHostDeath(t *testing.T) {
	// Reserve on two hosts, then kill host 1 before enactment. The
	// create_instance for mapping 1 fails; mapping 0's instance must be
	// destroyed by rollback.
	e := newEnv(t, 2, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0), e.mapping(1))
	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success {
		t.Fatal("reserve failed")
	}
	// Unbind host 1: calls to it now fail.
	e.rt.Unregister(e.hosts[1].LOID())
	reply := e.enactor.EnactSchedule(ctx, req.ID)
	if reply.Success {
		t.Fatal("enact should fail with host 1 gone")
	}
	if e.hosts[0].RunningCount() != 0 {
		t.Errorf("rollback left %d objects on host 0", e.hosts[0].RunningCount())
	}
	if len(e.class.Instances()) != 0 {
		t.Errorf("class still manages %v", e.class.Instances())
	}
}

func TestOrbProtocol(t *testing.T) {
	e := newEnv(t, 1, nil)
	ctx := context.Background()
	req := e.request(e.mapping(0))

	res, err := e.rt.Call(ctx, e.enactor.LOID(), proto.MethodMakeReservations,
		proto.MakeReservationsArgs{Request: req})
	if err != nil {
		t.Fatal(err)
	}
	fb := res.(proto.FeedbackReply).Feedback
	if !fb.Success {
		t.Fatalf("feedback: %+v", fb)
	}
	res, err = e.rt.Call(ctx, e.enactor.LOID(), proto.MethodEnactSchedule,
		proto.EnactScheduleArgs{RequestID: req.ID})
	if err != nil || !res.(proto.EnactReply).Success {
		t.Fatalf("enact over orb: %v %v", res, err)
	}
	// Cancel of an already-enacted request still releases state.
	if _, err := e.rt.Call(ctx, e.enactor.LOID(), proto.MethodCancelReservations,
		proto.CancelReservationsArgs{RequestID: req.ID}); err != nil {
		t.Errorf("cancel over orb: %v", err)
	}
	for _, m := range []string{proto.MethodMakeReservations, proto.MethodEnactSchedule,
		proto.MethodCancelReservations} {
		if _, err := e.rt.Call(ctx, e.enactor.LOID(), m, "bogus"); err == nil {
			t.Errorf("%s accepted bad arg", m)
		}
	}
}

func TestTotalStatsAccumulate(t *testing.T) {
	e := newEnv(t, 1, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		req := e.request(e.mapping(0))
		if fb := e.enactor.MakeReservations(ctx, req); !fb.Success {
			t.Fatal("reserve failed")
		}
	}
	total := e.enactor.TotalStats()
	if total.ReservationsRequested != 3 || total.ReservationsGranted != 3 || total.MastersTried != 3 {
		t.Errorf("total stats: %+v", total)
	}
}

func TestKofNSelectsAnyK(t *testing.T) {
	// 4 hosts, host 1 broken: a 3-of-4 group must succeed by skipping it.
	e := newEnv(t, 4, func(i int, c *host.Config) {
		if i == 1 {
			c.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: broken", host.ErrPolicy)
			}
		}
	})
	ctx := context.Background()
	group := sched.KofN{Class: e.class.LOID(), K: 3}
	for i := range e.hosts {
		group.Alternatives = append(group.Alternatives,
			sched.HostVault{Host: e.hosts[i].LOID(), Vault: e.vault.LOID()})
	}
	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}, KofN: []sched.KofN{group}}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success {
		t.Fatalf("feedback: %+v", fb)
	}
	// 1 base mapping + 3 group members resolved.
	if len(fb.Resolved) != 4 {
		t.Fatalf("resolved: %v", fb.Resolved)
	}
	seen := map[loid.LOID]bool{}
	for _, m := range fb.Resolved[1:] {
		if m.Host == e.hosts[1].LOID() {
			t.Errorf("group placed on broken host")
		}
		if seen[m.Host] {
			t.Errorf("group reused host %v", m.Host)
		}
		seen[m.Host] = true
	}
	// Enactment creates one instance per group member.
	reply := e.enactor.EnactSchedule(ctx, req.ID)
	if !reply.Success || len(reply.Instances) != 4 {
		t.Fatalf("enact: %+v", reply)
	}
}

func TestKofNInsufficientAlternatives(t *testing.T) {
	// 3 hosts, 2 broken: a 2-of-3 group cannot be satisfied; the base
	// mapping's reservation must be rolled back.
	e := newEnv(t, 3, func(i int, c *host.Config) {
		if i != 0 {
			c.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: broken", host.ErrPolicy)
			}
		}
	})
	ctx := context.Background()
	group := sched.KofN{Class: e.class.LOID(), K: 2}
	for i := 1; i < 3; i++ {
		group.Alternatives = append(group.Alternatives,
			sched.HostVault{Host: e.hosts[i].LOID(), Vault: e.vault.LOID()})
	}
	// Need len(alternatives) >= K for validation; give it 2 broken alts.
	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{e.mapping(0)}, KofN: []sched.KofN{group}}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(ctx, req)
	if fb.Success {
		t.Fatalf("feedback: %+v", fb)
	}
	if fb.Reason != sched.FailureResources {
		t.Errorf("reason: %v", fb.Reason)
	}
	// Base reservation was granted then rolled back.
	if fb.Stats.ReservationsGranted != 1 || fb.Stats.ReservationsCancelled != 1 {
		t.Errorf("stats: %+v", fb.Stats)
	}
}

func TestKofNValidation(t *testing.T) {
	e := newEnv(t, 1, nil)
	bad := sched.KofN{Class: e.class.LOID(), K: 3,
		Alternatives: []sched.HostVault{{Host: e.hosts[0].LOID(), Vault: e.vault.LOID()}}}
	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{KofN: []sched.KofN{bad}}},
	}
	fb := e.enactor.MakeReservations(context.Background(), req)
	if fb.Success || fb.Reason != sched.FailureMalformed {
		t.Errorf("k > n accepted: %+v", fb)
	}
}

func TestKofNOnlyGroupsNoBaseMappings(t *testing.T) {
	e := newEnv(t, 2, nil)
	ctx := context.Background()
	group := sched.KofN{Class: e.class.LOID(), K: 2, Alternatives: []sched.HostVault{
		{Host: e.hosts[0].LOID(), Vault: e.vault.LOID()},
		{Host: e.hosts[1].LOID(), Vault: e.vault.LOID()},
	}}
	req := sched.RequestList{
		ID:      e.enactor.NewRequestID(),
		Masters: []sched.Master{{KofN: []sched.KofN{group}}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := e.enactor.MakeReservations(ctx, req)
	if !fb.Success || len(fb.Resolved) != 2 {
		t.Fatalf("feedback: %+v", fb)
	}
	reply := e.enactor.EnactSchedule(ctx, req.ID)
	if !reply.Success {
		t.Fatalf("enact: %+v", reply)
	}
	if e.hosts[0].RunningCount() != 1 || e.hosts[1].RunningCount() != 1 {
		t.Error("group instances not distributed")
	}
}
