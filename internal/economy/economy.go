// Package economy implements the computational-economy layer of the
// Nimrod/G-style market (ROADMAP item 1, PAPERS.md): per-tenant budget
// accounts charged when the Enactor's negotiation grants reservation
// tokens, and refunded — exactly once per token — when a token is
// cancelled, rolled back, reaped, or preempted.
//
// The unit of account is the Credit, a fixed-point integer worth one
// millionth of a "dollar" of host price. Integer arithmetic makes the
// conservation invariant exact rather than float-approximate: for every
// account, at every instant,
//
//	Remaining + (Spent − Refunded) == Budget + Deposits
//
// and every refund corresponds to a prior charge of the same token for
// the same amount. The property test in economy_test.go and the
// campaign-level test in internal/experiments drive randomized
// multi-tenant workloads — with faults, rollbacks, and preemptions —
// against exactly this invariant.
package economy

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"legion/internal/telemetry"
)

// Credits is the ledger's fixed-point currency: 1e6 Credits equal one
// unit of host price ($host_price × hours). Integer so that charge and
// refund sums conserve exactly.
type Credits int64

// CreditsPerUnit is the fixed-point scale.
const CreditsPerUnit = 1_000_000

// ToCredits converts a float price into Credits, rounding half away
// from zero.
func ToCredits(units float64) Credits {
	return Credits(math.Round(units * CreditsPerUnit))
}

// Units converts back to the float price scale (for display only —
// ledger arithmetic never leaves Credits).
func (c Credits) Units() float64 { return float64(c) / CreditsPerUnit }

func (c Credits) String() string { return fmt.Sprintf("%.6g", c.Units()) }

// ErrInsufficientBudget is returned by Charge when the debit would push
// an account's remaining balance below zero. The Enactor maps it to a
// schedule refusal, so an over-budget tenant's negotiation fails before
// any instance starts.
var ErrInsufficientBudget = errors.New("economy: insufficient budget")

// Unlimited is the budget given to tenants that never opened an
// account: effectively infinite, so cost-blind workloads ride through
// a ledger-enabled Enactor unchanged.
const Unlimited = Credits(math.MaxInt64 / 4)

// Account is one tenant's ledger: an initial budget plus deposits,
// gross spend, and gross refunds. All mutation goes through the owning
// Ledger so token attribution stays consistent.
type Account struct {
	Tenant   string
	Budget   Credits // initial budget + later deposits
	Spent    Credits // gross charges (never decremented)
	Refunded Credits // gross refunds (each matching a prior charge)
}

// Remaining is the balance available for new charges.
func (a Account) Remaining() Credits { return a.Budget - a.Spent + a.Refunded }

// Outstanding is the net spend currently held against live tokens.
func (a Account) Outstanding() Credits { return a.Spent - a.Refunded }

// charge records one token's debit so a later refund can return
// exactly the charged amount, exactly once.
type charge struct {
	tenant string
	amount Credits
}

// Ledger is the set of tenant accounts plus the token→charge table
// that makes refunds exact and idempotent. A single Ledger is shared by
// the Enactor (charges, cancel/rollback/reap refunds) and the
// rebalancer's preempting policy (preemption refunds).
type Ledger struct {
	mu       sync.Mutex
	accounts map[string]*Account
	charges  map[uint64]charge // live (unrefunded) token charges

	spendTotal   *telemetry.Counter
	refundTotal  *telemetry.Counter
	refusedTotal *telemetry.Counter
}

// NewLedger builds an empty ledger reporting into reg (nil uses the
// process-wide default registry).
func NewLedger(reg *telemetry.Registry) *Ledger {
	if reg == nil {
		reg = telemetry.Default
	}
	return &Ledger{
		accounts:     make(map[string]*Account),
		charges:      make(map[uint64]charge),
		spendTotal:   reg.Counter("legion_economy_spend_credits_total"),
		refundTotal:  reg.Counter("legion_economy_refund_credits_total"),
		refusedTotal: reg.Counter("legion_economy_budget_refusals_total"),
	}
}

// Open creates (or tops up) the tenant's account with the given budget.
// Opening an existing account adds to its budget, so Open doubles as a
// deposit operation. Unlike the implicit account Charge creates for
// never-opened tenants, an Open account starts from zero, not
// Unlimited.
func (l *Ledger) Open(tenant string, budget Credits) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a := l.accounts[tenant]
	if a == nil {
		a = &Account{Tenant: tenant}
		l.accounts[tenant] = a
	}
	a.Budget += budget
}

// account returns the tenant's account, creating an Unlimited one on
// first touch. Callers hold l.mu.
func (l *Ledger) account(tenant string) *Account {
	a := l.accounts[tenant]
	if a == nil {
		a = &Account{Tenant: tenant, Budget: Unlimited}
		l.accounts[tenant] = a
	}
	return a
}

// Charge debits the tenant for one reservation token. It fails with
// ErrInsufficientBudget (leaving the ledger untouched) if the account
// cannot cover the amount, and rejects double charges of a live token —
// a charge must be refunded before its token ID can be charged again.
func (l *Ledger) Charge(tenant string, token uint64, amount Credits) error {
	if amount < 0 {
		return fmt.Errorf("economy: negative charge %v for token %d", amount, token)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, dup := l.charges[token]; dup {
		return fmt.Errorf("economy: token %d already charged to %q", token, prev.tenant)
	}
	a := l.account(tenant)
	if a.Remaining() < amount {
		l.refusedTotal.Inc()
		return fmt.Errorf("%w: tenant %q remaining %v < charge %v",
			ErrInsufficientBudget, tenant, a.Remaining(), amount)
	}
	a.Spent += amount
	l.charges[token] = charge{tenant: tenant, amount: amount}
	l.spendTotal.Add(int64(amount))
	return nil
}

// Refund returns a token's charge to its tenant. Unknown or
// already-refunded tokens are a no-op returning 0, which is what makes
// the enactor's overlapping cancel/rollback/reap/preempt paths
// exactly-once by construction.
func (l *Ledger) Refund(token uint64) Credits {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.charges[token]
	if !ok {
		return 0
	}
	delete(l.charges, token)
	l.accounts[c.tenant].Refunded += c.amount
	l.refundTotal.Add(int64(c.amount))
	return c.amount
}

// Account returns a snapshot of the tenant's ledger state (zero-value
// Account with the tenant name if it was never touched).
func (l *Ledger) Account(tenant string) Account {
	l.mu.Lock()
	defer l.mu.Unlock()
	if a := l.accounts[tenant]; a != nil {
		return *a
	}
	return Account{Tenant: tenant}
}

// Accounts returns snapshots of every account, sorted by tenant.
func (l *Ledger) Accounts() []Account {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Account, 0, len(l.accounts))
	for _, a := range l.accounts {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// LiveCharges returns the number of charged-but-unrefunded tokens.
func (l *Ledger) LiveCharges() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.charges)
}

// Audit checks the conservation invariants and returns a list of
// violations (empty for a healthy ledger):
//
//   - per account: Remaining + Outstanding == Budget, Refunded ≤ Spent,
//     and Remaining ≥ 0;
//   - globally: the sum of live (unrefunded) charges equals the sum of
//     account Outstanding balances — every credit in flight is
//     attributed to exactly one token.
func (l *Ledger) Audit() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var bad []string
	var outstanding Credits
	for _, a := range l.accounts {
		if a.Remaining()+a.Outstanding() != a.Budget {
			bad = append(bad, fmt.Sprintf("tenant %q: remaining %v + outstanding %v != budget %v",
				a.Tenant, a.Remaining(), a.Outstanding(), a.Budget))
		}
		if a.Refunded > a.Spent {
			bad = append(bad, fmt.Sprintf("tenant %q: refunded %v > spent %v", a.Tenant, a.Refunded, a.Spent))
		}
		if a.Remaining() < 0 {
			bad = append(bad, fmt.Sprintf("tenant %q: negative remaining %v", a.Tenant, a.Remaining()))
		}
		outstanding += a.Outstanding()
	}
	var live Credits
	for _, c := range l.charges {
		live += c.amount
	}
	if live != outstanding {
		bad = append(bad, fmt.Sprintf("live token charges %v != outstanding spend %v", live, outstanding))
	}
	return bad
}
