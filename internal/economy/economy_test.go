package economy

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"legion/internal/telemetry"
)

func TestChargeRefundExactlyOnce(t *testing.T) {
	l := NewLedger(telemetry.NewRegistry())
	l.Open("t1", ToCredits(10))

	if err := l.Charge("t1", 42, ToCredits(4)); err != nil {
		t.Fatalf("charge: %v", err)
	}
	if err := l.Charge("t1", 42, ToCredits(1)); err == nil {
		t.Fatalf("double charge of live token accepted")
	}
	if got := l.Account("t1").Remaining(); got != ToCredits(6) {
		t.Fatalf("remaining = %v, want 6", got)
	}
	if got := l.Refund(42); got != ToCredits(4) {
		t.Fatalf("refund = %v, want 4", got)
	}
	if got := l.Refund(42); got != 0 {
		t.Fatalf("second refund = %v, want 0", got)
	}
	if got := l.Account("t1").Remaining(); got != ToCredits(10) {
		t.Fatalf("remaining after refund = %v, want 10", got)
	}
	if bad := l.Audit(); len(bad) != 0 {
		t.Fatalf("audit: %v", bad)
	}
}

func TestChargeRefusesOverBudget(t *testing.T) {
	l := NewLedger(telemetry.NewRegistry())
	l.Open("poor", ToCredits(1))
	if err := l.Charge("poor", 1, ToCredits(2)); !errors.Is(err, ErrInsufficientBudget) {
		t.Fatalf("err = %v, want ErrInsufficientBudget", err)
	}
	// A refused charge must leave the ledger untouched.
	if got := l.Account("poor").Remaining(); got != ToCredits(1) {
		t.Fatalf("remaining after refusal = %v, want 1", got)
	}
	if l.LiveCharges() != 0 {
		t.Fatalf("refused charge left a live token record")
	}
}

func TestUnknownTenantIsUnlimited(t *testing.T) {
	l := NewLedger(telemetry.NewRegistry())
	if err := l.Charge("anon", 7, ToCredits(1e6)); err != nil {
		t.Fatalf("charge against implicit account: %v", err)
	}
	l.Refund(7)
	if bad := l.Audit(); len(bad) != 0 {
		t.Fatalf("audit: %v", bad)
	}
}

// TestLedgerConservationProperty is the unit-level half of the ISSUE's
// ledger-conservation property: randomized concurrent charge/refund
// streams across many tenants, with deliberate over-budget attempts and
// double refunds, must keep every account's
// Remaining + Outstanding == Budget and every refund matched to exactly
// one charge. Run under -race this also pins the Ledger's locking.
func TestLedgerConservationProperty(t *testing.T) {
	const (
		tenants = 8
		workers = 8
		opsEach = 2_000
	)
	l := NewLedger(telemetry.NewRegistry())
	names := make([]string, tenants)
	for i := range names {
		names[i] = string(rune('a' + i))
		l.Open(names[i], ToCredits(float64(50+25*i)))
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for op := 0; op < opsEach; op++ {
				tok := uint64(w)<<32 | uint64(op)
				tenant := names[rng.Intn(tenants)]
				amt := ToCredits(rng.Float64() * 5)
				if err := l.Charge(tenant, tok, amt); err != nil {
					continue // over budget: fine, must just not corrupt
				}
				switch rng.Intn(3) {
				case 0: // keep the charge (simulates a completed, paid run)
				case 1:
					l.Refund(tok)
				case 2: // double refund (cancel racing rollback)
					l.Refund(tok)
					l.Refund(tok)
				}
			}
		}(w)
	}
	wg.Wait()

	if bad := l.Audit(); len(bad) != 0 {
		t.Fatalf("conservation violated: %v", bad)
	}
	// Refunding every live token must restore Remaining == Budget for
	// every account: Σ(spend) and Σ(refunds) cancel to the credit.
	for w := 0; w < workers; w++ {
		for op := 0; op < opsEach; op++ {
			l.Refund(uint64(w)<<32 | uint64(op))
		}
	}
	for _, a := range l.Accounts() {
		if a.Remaining() != a.Budget {
			t.Fatalf("tenant %q: remaining %v != budget %v after full refund", a.Tenant, a.Remaining(), a.Budget)
		}
		if a.Spent != a.Refunded {
			t.Fatalf("tenant %q: spent %v != refunded %v after full refund", a.Tenant, a.Spent, a.Refunded)
		}
	}
	if l.LiveCharges() != 0 {
		t.Fatalf("%d live charges after full refund", l.LiveCharges())
	}
}
