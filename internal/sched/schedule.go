package sched

import (
	"errors"
	"fmt"
	"time"

	"legion/internal/loid"
)

// Mapping is one schedule entry: an instance of Class should be started
// on the (Host, Vault) pair. This is the paper's
// (Class LOID -> (Host LOID x Vault LOID)) mapping type.
type Mapping struct {
	Class loid.LOID
	Host  loid.LOID
	Vault loid.LOID
}

// String renders the mapping for traces.
func (m Mapping) String() string {
	return fmt.Sprintf("%s -> (%s, %s)", m.Class.Short(), m.Host.Short(), m.Vault.Short())
}

// Replacement is one variant-schedule entry: a new mapping for master
// entry Index.
type Replacement struct {
	// Index is the position in the master schedule's mapping list that
	// this replacement substitutes.
	Index int
	// Mapping is the substitute placement.
	Mapping Mapping
}

// Variant is a variant schedule: a set of single-object replacements for
// a master schedule, plus the bitmap over master entries that lets the
// Enactor select the next applicable variant efficiently (Fig 5).
type Variant struct {
	Replacements []Replacement
	// Covers has one bit per master mapping; bit i is set iff the
	// variant provides a replacement for master entry i. Maintained by
	// AddReplacement; trust it rather than rescanning Replacements.
	Covers Bitmap
}

// AddReplacement appends a replacement and updates the bitmap.
func (v *Variant) AddReplacement(index int, m Mapping) {
	v.Replacements = append(v.Replacements, Replacement{Index: index, Mapping: m})
	v.Covers.Set(index)
}

// HostVault is one resource pair in a k-of-n equivalence class.
type HostVault struct {
	Host  loid.LOID
	Vault loid.LOID
}

// KofN is an equivalence-class request (§3.3: "We will also support
// 'k out of n' scheduling, where the Scheduler specifies an equivalence
// class of n resources and asks the Enactor to start k instances of the
// same object on them"). The Enactor reserves any K of the Alternatives
// (one instance per resource, in preference order) and fails the master
// if fewer than K are obtainable.
type KofN struct {
	Class loid.LOID
	K     int
	// Alternatives is the equivalence class, in preference order.
	Alternatives []HostVault
}

// Validate checks structural sanity of the equivalence class.
func (g *KofN) Validate() error {
	if g.Class.IsNil() {
		return errors.New("sched: k-of-n group with nil class")
	}
	if g.K < 1 {
		return fmt.Errorf("sched: k-of-n group wants k >= 1, got %d", g.K)
	}
	if g.K > len(g.Alternatives) {
		return fmt.Errorf("sched: k-of-n group wants %d of %d alternatives", g.K, len(g.Alternatives))
	}
	for i, a := range g.Alternatives {
		if a.Host.IsNil() || a.Vault.IsNil() {
			return fmt.Errorf("sched: k-of-n alternative %d has nil LOID", i)
		}
	}
	return nil
}

// Master is a master schedule: a full mapping list plus its variants,
// and optionally k-of-n equivalence-class groups.
type Master struct {
	Mappings []Mapping
	Variants []Variant
	// KofN groups are reserved after Mappings; each contributes K
	// resolved mappings to the enacted schedule.
	KofN []KofN
}

// Validate checks structural sanity: non-empty mappings with non-nil
// LOIDs, variant replacement indices in range with bitmaps that agree,
// and well-formed k-of-n groups.
func (m *Master) Validate() error {
	if len(m.Mappings) == 0 && len(m.KofN) == 0 {
		return errors.New("sched: master schedule has no mappings")
	}
	for gi := range m.KofN {
		if err := m.KofN[gi].Validate(); err != nil {
			return fmt.Errorf("group %d: %w", gi, err)
		}
	}
	for i, mp := range m.Mappings {
		if mp.Class.IsNil() || mp.Host.IsNil() || mp.Vault.IsNil() {
			return fmt.Errorf("sched: master mapping %d has nil LOID: %v", i, mp)
		}
	}
	for vi := range m.Variants {
		v := &m.Variants[vi]
		covered := NewBitmap(len(m.Mappings))
		for _, r := range v.Replacements {
			if r.Index < 0 || r.Index >= len(m.Mappings) {
				return fmt.Errorf("sched: variant %d replaces out-of-range entry %d", vi, r.Index)
			}
			if r.Mapping.Class.IsNil() || r.Mapping.Host.IsNil() || r.Mapping.Vault.IsNil() {
				return fmt.Errorf("sched: variant %d entry %d has nil LOID", vi, r.Index)
			}
			if covered.Get(r.Index) {
				return fmt.Errorf("sched: variant %d replaces entry %d twice", vi, r.Index)
			}
			covered.Set(r.Index)
		}
		if !v.Covers.Contains(covered) || !covered.Contains(v.Covers) {
			return fmt.Errorf("sched: variant %d bitmap %v disagrees with replacements %v",
				vi, v.Covers, covered)
		}
	}
	return nil
}

// Apply returns the master's mapping list with the variant's replacements
// substituted. The master is not modified.
func (m *Master) Apply(v *Variant) []Mapping {
	out := append([]Mapping(nil), m.Mappings...)
	for _, r := range v.Replacements {
		if r.Index >= 0 && r.Index < len(out) {
			out[r.Index] = r.Mapping
		}
	}
	return out
}

// NextVariant returns the index of the first variant at or after `from`
// whose coverage intersects the failed-entry bitmap — the Enactor's
// efficient variant-selection step. It returns -1 if none qualifies.
func (m *Master) NextVariant(from int, failed Bitmap) int {
	for i := from; i < len(m.Variants); i++ {
		if m.Variants[i].Covers.Intersects(failed) {
			return i
		}
	}
	return -1
}

// ReservationSpec carries the reservation parameters the Enactor presents
// to Hosts for every mapping of a request: the Table 2 type bits plus the
// start/duration/timeout of §3.1 ("One can thus reserve an hour of CPU
// time starting at noon tomorrow").
type ReservationSpec struct {
	Share    bool
	Reuse    bool
	Start    time.Time
	Duration time.Duration
	Timeout  time.Duration
	// Priority is the request's priority class (higher = more
	// important; 0 is the default). The Enactor's admission controller
	// orders its wait-queue by it and sheds low classes first; Hosts may
	// refuse low classes above an occupancy watermark.
	Priority int
	// Tenant names the paying account for the computational-economy
	// layer (DESIGN.md §15). Empty means no account: the Enactor's
	// ledger, if any, bills an implicit unlimited account, and admission
	// applies no per-tenant fair share.
	Tenant string
	// Deadline is the requested completion bound relative to schedule
	// time (Nimrod/G's deadline knob); zero means none. The
	// DeadlineBudget scheduler only assigns hosts whose estimated
	// completion fits it, and the preempting rebalance policy defends it
	// once instances run.
	Deadline time.Duration
	// Budget caps this request's total spend in economy credit units
	// (host price × hours, see economy.Credits); zero means unlimited.
	// The DeadlineBudget scheduler minimizes cost under it, and the
	// Enactor's ledger refuses charges past the tenant's balance.
	Budget float64
}

// RequestList is the paper's LegionScheduleRequestList: the entire
// Figure 5 structure, a list of master schedules in preference order.
type RequestList struct {
	// ID correlates MakeReservations / EnactSchedule / CancelReservations
	// calls on the Enactor for the same scheduling episode.
	ID uint64
	// Masters are tried in order until one (with its variants) succeeds.
	Masters []Master
	// Res is the reservation specification applied to every mapping; a
	// zero Duration gets the Enactor's default.
	Res ReservationSpec
}

// Validate checks every master schedule.
func (r *RequestList) Validate() error {
	if len(r.Masters) == 0 {
		return errors.New("sched: request list has no master schedules")
	}
	for i := range r.Masters {
		if err := r.Masters[i].Validate(); err != nil {
			return fmt.Errorf("master %d: %w", i, err)
		}
	}
	return nil
}

// FailureReason classifies why reservation-making failed, per §3.4: "If
// all schedules failed, the Enactor may report whether the failure was
// due to an inability to obtain resources, a malformed schedule, or other
// failure."
type FailureReason int

// Failure classifications.
const (
	FailureNone FailureReason = iota
	FailureResources
	FailureMalformed
	FailureOther
)

// String names the reason.
func (f FailureReason) String() string {
	switch f {
	case FailureNone:
		return "none"
	case FailureResources:
		return "unable to obtain resources"
	case FailureMalformed:
		return "malformed schedule"
	default:
		return "other failure"
	}
}

// Feedback is the paper's LegionScheduleFeedback: the original request
// plus whether the reservations were successfully made, and if so which
// schedule succeeded.
type Feedback struct {
	// Request is the original request list.
	Request RequestList
	// Success reports whether some master (possibly with variants)
	// was fully reserved.
	Success bool
	// MasterIndex is the index of the winning master schedule; -1 on
	// failure.
	MasterIndex int
	// Resolved is the winning mapping list after variant substitution;
	// nil on failure.
	Resolved []Mapping
	// VariantsApplied lists the variant indices that were applied to the
	// winning master, in application order.
	VariantsApplied []int
	// Reason classifies a failure.
	Reason FailureReason
	// Detail is a human-readable elaboration of Reason.
	Detail string
	// Stats records the negotiation effort, used by schedulers that
	// adapt and by the benchmark harness.
	Stats EnactmentStats
}

// EnactmentStats counts the Enactor's negotiation work for one episode.
// ReservationsCancelled in particular measures the reservation thrashing
// the variant-schedule design exists to avoid.
type EnactmentStats struct {
	ReservationsRequested int
	ReservationsGranted   int
	ReservationsCancelled int
	VariantsTried         int
	MastersTried          int
}
