package sched

import (
	"legion/internal/wire"
)

// This file gives the Figure 5 schedule structures hand-rolled binary
// wire encodings. MakeReservations carries an entire RequestList per
// call, so this is the largest message on the negotiation hot path;
// every helper reuses caller slice capacity on decode.

// AppendWire appends the bitmap's word vector.
func (b Bitmap) AppendWire(buf []byte) []byte {
	buf = wire.AppendUvarint(buf, uint64(len(b.words)))
	for _, w := range b.words {
		buf = wire.AppendUvarint(buf, w)
	}
	return buf
}

// DecodeWire consumes a Bitmap, reusing the word slice's capacity.
func (b *Bitmap) DecodeWire(r *wire.Reader) {
	n := r.Len()
	if r.Err != nil || n == 0 {
		b.words = nil
		return
	}
	if cap(b.words) >= n {
		b.words = b.words[:n]
	} else {
		b.words = make([]uint64, n)
	}
	for i := range b.words {
		b.words[i] = r.Uvarint()
	}
}

// AppendWire appends the mapping's three LOIDs.
func (m Mapping) AppendWire(b []byte) []byte {
	b = m.Class.AppendWire(b)
	b = m.Host.AppendWire(b)
	return m.Vault.AppendWire(b)
}

// DecodeWire consumes a Mapping.
func (m *Mapping) DecodeWire(r *wire.Reader) {
	m.Class.DecodeWire(r)
	m.Host.DecodeWire(r)
	m.Vault.DecodeWire(r)
}

func appendMappings(b []byte, ms []Mapping) []byte {
	b = wire.AppendUvarint(b, uint64(len(ms)))
	for i := range ms {
		b = ms[i].AppendWire(b)
	}
	return b
}

func decodeMappings(r *wire.Reader, reuse []Mapping) []Mapping {
	n := r.Len()
	if r.Err != nil || n == 0 {
		return nil
	}
	var out []Mapping
	if cap(reuse) >= n {
		out = reuse[:n]
	} else {
		out = make([]Mapping, n)
	}
	for i := range out {
		out[i].DecodeWire(r)
	}
	return out
}

// AppendWire appends the variant: replacements then coverage bitmap.
func (v *Variant) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(v.Replacements)))
	for i := range v.Replacements {
		b = wire.AppendVarint(b, int64(v.Replacements[i].Index))
		b = v.Replacements[i].Mapping.AppendWire(b)
	}
	return v.Covers.AppendWire(b)
}

// DecodeWire consumes a Variant, reusing slice capacities.
func (v *Variant) DecodeWire(r *wire.Reader) {
	n := r.Len()
	if n > 0 {
		if cap(v.Replacements) >= n {
			v.Replacements = v.Replacements[:n]
		} else {
			v.Replacements = make([]Replacement, n)
		}
		for i := range v.Replacements {
			v.Replacements[i].Index = int(r.Varint())
			v.Replacements[i].Mapping.DecodeWire(r)
		}
	} else {
		v.Replacements = nil
	}
	v.Covers.DecodeWire(r)
}

// AppendWire appends the k-of-n equivalence class.
func (g *KofN) AppendWire(b []byte) []byte {
	b = g.Class.AppendWire(b)
	b = wire.AppendVarint(b, int64(g.K))
	b = wire.AppendUvarint(b, uint64(len(g.Alternatives)))
	for i := range g.Alternatives {
		b = g.Alternatives[i].Host.AppendWire(b)
		b = g.Alternatives[i].Vault.AppendWire(b)
	}
	return b
}

// DecodeWire consumes a KofN, reusing the alternatives slice.
func (g *KofN) DecodeWire(r *wire.Reader) {
	g.Class.DecodeWire(r)
	g.K = int(r.Varint())
	n := r.Len()
	if r.Err != nil || n == 0 {
		g.Alternatives = nil
		return
	}
	if cap(g.Alternatives) >= n {
		g.Alternatives = g.Alternatives[:n]
	} else {
		g.Alternatives = make([]HostVault, n)
	}
	for i := range g.Alternatives {
		g.Alternatives[i].Host.DecodeWire(r)
		g.Alternatives[i].Vault.DecodeWire(r)
	}
}

// AppendWire appends the master schedule.
func (m *Master) AppendWire(b []byte) []byte {
	b = appendMappings(b, m.Mappings)
	b = wire.AppendUvarint(b, uint64(len(m.Variants)))
	for i := range m.Variants {
		b = m.Variants[i].AppendWire(b)
	}
	b = wire.AppendUvarint(b, uint64(len(m.KofN)))
	for i := range m.KofN {
		b = m.KofN[i].AppendWire(b)
	}
	return b
}

// DecodeWire consumes a Master, reusing nested slice capacities.
func (m *Master) DecodeWire(r *wire.Reader) {
	m.Mappings = decodeMappings(r, m.Mappings)
	n := r.Len()
	if n > 0 {
		if cap(m.Variants) >= n {
			m.Variants = m.Variants[:n]
		} else {
			m.Variants = make([]Variant, n)
		}
		for i := range m.Variants {
			m.Variants[i].DecodeWire(r)
		}
	} else {
		m.Variants = nil
	}
	n = r.Len()
	if n > 0 {
		if cap(m.KofN) >= n {
			m.KofN = m.KofN[:n]
		} else {
			m.KofN = make([]KofN, n)
		}
		for i := range m.KofN {
			m.KofN[i].DecodeWire(r)
		}
	} else {
		m.KofN = nil
	}
}

// AppendWire appends the reservation spec.
func (s *ReservationSpec) AppendWire(b []byte) []byte {
	b = wire.AppendBool(b, s.Share)
	b = wire.AppendBool(b, s.Reuse)
	b = wire.AppendTime(b, s.Start)
	b = wire.AppendDuration(b, s.Duration)
	b = wire.AppendDuration(b, s.Timeout)
	b = wire.AppendVarint(b, int64(s.Priority))
	b = wire.AppendString(b, s.Tenant)
	b = wire.AppendDuration(b, s.Deadline)
	return wire.AppendFloat64(b, s.Budget)
}

// DecodeWire consumes a ReservationSpec.
func (s *ReservationSpec) DecodeWire(r *wire.Reader) {
	s.Share = r.Bool()
	s.Reuse = r.Bool()
	s.Start = r.Time()
	s.Duration = r.Duration()
	s.Timeout = r.Duration()
	s.Priority = int(r.Varint())
	s.Tenant = r.Sym()
	s.Deadline = r.Duration()
	s.Budget = r.Float64()
}

// AppendWire appends the full LegionScheduleRequestList.
func (rl *RequestList) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, rl.ID)
	b = wire.AppendUvarint(b, uint64(len(rl.Masters)))
	for i := range rl.Masters {
		b = rl.Masters[i].AppendWire(b)
	}
	return rl.Res.AppendWire(b)
}

// DecodeWire consumes a RequestList, reusing nested slice capacities.
func (rl *RequestList) DecodeWire(r *wire.Reader) {
	rl.ID = r.Uvarint()
	n := r.Len()
	if n > 0 {
		if cap(rl.Masters) >= n {
			rl.Masters = rl.Masters[:n]
		} else {
			rl.Masters = make([]Master, n)
		}
		for i := range rl.Masters {
			rl.Masters[i].DecodeWire(r)
		}
	} else {
		rl.Masters = nil
	}
	rl.Res.DecodeWire(r)
}

// AppendWire appends the LegionScheduleFeedback.
func (f *Feedback) AppendWire(b []byte) []byte {
	b = f.Request.AppendWire(b)
	b = wire.AppendBool(b, f.Success)
	b = wire.AppendVarint(b, int64(f.MasterIndex))
	b = appendMappings(b, f.Resolved)
	b = wire.AppendUvarint(b, uint64(len(f.VariantsApplied)))
	for _, vi := range f.VariantsApplied {
		b = wire.AppendVarint(b, int64(vi))
	}
	b = wire.AppendVarint(b, int64(f.Reason))
	b = wire.AppendString(b, f.Detail)
	b = wire.AppendVarint(b, int64(f.Stats.ReservationsRequested))
	b = wire.AppendVarint(b, int64(f.Stats.ReservationsGranted))
	b = wire.AppendVarint(b, int64(f.Stats.ReservationsCancelled))
	b = wire.AppendVarint(b, int64(f.Stats.VariantsTried))
	return wire.AppendVarint(b, int64(f.Stats.MastersTried))
}

// DecodeWire consumes a Feedback, reusing nested slice capacities.
func (f *Feedback) DecodeWire(r *wire.Reader) {
	f.Request.DecodeWire(r)
	f.Success = r.Bool()
	f.MasterIndex = int(r.Varint())
	f.Resolved = decodeMappings(r, f.Resolved)
	n := r.Len()
	if n > 0 {
		if cap(f.VariantsApplied) >= n {
			f.VariantsApplied = f.VariantsApplied[:n]
		} else {
			f.VariantsApplied = make([]int, n)
		}
		for i := range f.VariantsApplied {
			f.VariantsApplied[i] = int(r.Varint())
		}
	} else {
		f.VariantsApplied = nil
	}
	f.Reason = FailureReason(r.Varint())
	f.Detail = r.Str()
	f.Stats.ReservationsRequested = int(r.Varint())
	f.Stats.ReservationsGranted = int(r.Varint())
	f.Stats.ReservationsCancelled = int(r.Varint())
	f.Stats.VariantsTried = int(r.Varint())
	f.Stats.MastersTried = int(r.Varint())
}
