// Package sched implements the Schedule data structure of Figure 5 and
// the feedback types exchanged between Schedulers and Enactors (§3.3):
// LegionScheduleList, LegionScheduleRequestList, LegionScheduleFeedback.
//
// A Schedule has at least one Master Schedule; each Master Schedule may
// carry a list of Variant Schedules. Both contain mappings of type
// (Class LOID -> (Host LOID x Vault LOID)): each mapping says an instance
// of the class should be started on that (Host, Vault) pair. Each variant
// carries a bitmap (one bit per master mapping) telling the Enactor which
// master entries the variant replaces, so the Enactor can efficiently
// select the next variant to try when an entry fails — keeping "the
// intelligence where it belongs: under the control of the Scheduler
// implementer".
package sched

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitmap is a dense bitset, one bit per master-schedule mapping.
type Bitmap struct {
	words []uint64
}

// NewBitmap returns a bitmap able to hold at least n bits.
func NewBitmap(n int) Bitmap {
	if n < 0 {
		panic("sched: negative bitmap size")
	}
	return Bitmap{words: make([]uint64, (n+63)/64)}
}

// NewBitmapOf returns a bitmap of at least n bits with the given bits
// set — the Enactor builds a round's collected failure bitmap from the
// indices gathered off its parallel reservation calls.
func NewBitmapOf(n int, bits ...int) Bitmap {
	b := NewBitmap(n)
	for _, i := range bits {
		b.Set(i)
	}
	return b
}

// Set sets bit i, growing the bitmap if needed.
func (b *Bitmap) Set(i int) {
	if i < 0 {
		panic("sched: negative bit index")
	}
	w := i / 64
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (i % 64)
}

// Clear clears bit i; clearing beyond the current size is a no-op.
func (b *Bitmap) Clear(i int) {
	if i < 0 {
		panic("sched: negative bit index")
	}
	w := i / 64
	if w < len(b.words) {
		b.words[w] &^= 1 << (i % 64)
	}
}

// Get reports bit i; bits beyond the current size read as zero.
func (b Bitmap) Get(i int) bool {
	if i < 0 {
		return false
	}
	w := i / 64
	return w < len(b.words) && b.words[w]&(1<<(i%64)) != 0
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Intersects reports whether b and o share any set bit. The Enactor uses
// this to find a variant covering the failed mappings in one word-wise
// sweep rather than per-entry scans.
func (b Bitmap) Intersects(o Bitmap) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Contains reports whether every set bit of o is also set in b.
func (b Bitmap) Contains(o Bitmap) bool {
	for i, w := range o.words {
		var bw uint64
		if i < len(b.words) {
			bw = b.words[i]
		}
		if w&^bw != 0 {
			return false
		}
	}
	return true
}

// Bits returns the indices of set bits in ascending order.
func (b Bitmap) Bits() []int {
	var out []int
	for wi, w := range b.words {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, wi*64+i)
			w &^= 1 << i
		}
	}
	return out
}

// Clone returns an independent copy.
func (b Bitmap) Clone() Bitmap {
	return Bitmap{words: append([]uint64(nil), b.words...)}
}

// GobEncode implements gob.GobEncoder: schedules cross the wire between
// remote Schedulers and Enactors, and the bitmap's words are unexported.
func (b Bitmap) GobEncode() ([]byte, error) {
	out := make([]byte, 8*len(b.words))
	for i, w := range b.words {
		for j := 0; j < 8; j++ {
			out[i*8+j] = byte(w >> (8 * j))
		}
	}
	return out, nil
}

// GobDecode implements gob.GobDecoder.
func (b *Bitmap) GobDecode(data []byte) error {
	if len(data)%8 != 0 {
		return fmt.Errorf("sched: bitmap payload length %d not a multiple of 8", len(data))
	}
	b.words = make([]uint64, len(data)/8)
	for i := range b.words {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(data[i*8+j]) << (8 * j)
		}
		b.words[i] = w
	}
	return nil
}

// String renders the set bits, e.g. "{0,3,17}".
func (b Bitmap) String() string {
	bs := b.Bits()
	parts := make([]string, len(bs))
	for i, x := range bs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
