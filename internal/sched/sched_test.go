package sched

import (
	"testing"
	"testing/quick"

	"legion/internal/loid"
)

func l(class string, n uint64) loid.LOID {
	return loid.LOID{Domain: "uva", Class: class, Instance: n}
}

func mapping(c, h, v uint64) Mapping {
	return Mapping{Class: l("C", c), Host: l("Host", h), Vault: l("Vault", v)}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(10)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(9)
	b.Set(64) // grows
	b.Set(130)
	if !b.Get(0) || !b.Get(9) || !b.Get(64) || !b.Get(130) {
		t.Error("set bits not readable")
	}
	if b.Get(1) || b.Get(131) || b.Get(-1) {
		t.Error("unset bits read as set")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	got := b.Bits()
	want := []int{0, 9, 64, 130}
	if len(got) != len(want) {
		t.Fatalf("Bits = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bits = %v, want %v", got, want)
		}
	}
	b.Clear(9)
	if b.Get(9) || b.Count() != 3 {
		t.Error("Clear failed")
	}
	b.Clear(100000) // beyond size: no-op
	if b.String() != "{0,64,130}" {
		t.Errorf("String = %s", b.String())
	}
}

func TestBitmapIntersectsContains(t *testing.T) {
	a := NewBitmap(8)
	a.Set(1)
	a.Set(3)
	c := NewBitmap(8)
	c.Set(3)
	if !a.Intersects(c) || !c.Intersects(a) {
		t.Error("Intersects false negative")
	}
	if !a.Contains(c) {
		t.Error("a should contain c")
	}
	if c.Contains(a) {
		t.Error("c should not contain a")
	}
	d := NewBitmap(200)
	d.Set(190)
	if a.Intersects(d) || d.Intersects(a) {
		t.Error("Intersects false positive across sizes")
	}
	if a.Contains(d) {
		t.Error("Contains false positive across sizes")
	}
	if !d.Contains(NewBitmap(0)) {
		t.Error("everything contains the empty bitmap")
	}
}

func TestBitmapCloneIndependent(t *testing.T) {
	a := NewBitmap(4)
	a.Set(2)
	b := a.Clone()
	b.Set(3)
	if a.Get(3) {
		t.Error("clone aliases original")
	}
}

func TestBitmapProperty(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitmap(0)
		seen := map[int]bool{}
		for _, x := range idxs {
			i := int(x % 512)
			b.Set(i)
			seen[i] = true
		}
		if b.Count() != len(seen) {
			return false
		}
		for i := range seen {
			if !b.Get(i) {
				return false
			}
		}
		prev := -1
		for _, i := range b.Bits() {
			if i <= prev || !seen[i] {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapPanicsOnNegative(t *testing.T) {
	for _, f := range []func(){
		func() { NewBitmap(-1) },
		func() { b := NewBitmap(1); b.Set(-1) },
		func() { b := NewBitmap(1); b.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestVariantAddReplacement(t *testing.T) {
	var v Variant
	v.AddReplacement(2, mapping(1, 5, 5))
	v.AddReplacement(0, mapping(2, 6, 6))
	if v.Covers.String() != "{0,2}" {
		t.Errorf("Covers = %v", v.Covers)
	}
	if len(v.Replacements) != 2 || v.Replacements[0].Index != 2 {
		t.Errorf("Replacements = %v", v.Replacements)
	}
}

func newMaster() Master {
	m := Master{Mappings: []Mapping{mapping(1, 1, 1), mapping(1, 2, 2), mapping(2, 3, 3)}}
	var v0, v1 Variant
	v0.AddReplacement(1, mapping(1, 4, 4))
	v1.AddReplacement(0, mapping(1, 5, 5))
	v1.AddReplacement(2, mapping(2, 6, 6))
	m.Variants = []Variant{v0, v1}
	return m
}

func TestMasterValidateOK(t *testing.T) {
	m := newMaster()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMasterValidateErrors(t *testing.T) {
	empty := Master{}
	if err := empty.Validate(); err == nil {
		t.Error("empty master validated")
	}

	nilLOID := Master{Mappings: []Mapping{{Class: l("C", 1), Host: loid.Nil, Vault: l("V", 1)}}}
	if err := nilLOID.Validate(); err == nil {
		t.Error("nil host LOID validated")
	}

	m := newMaster()
	m.Variants[0].Replacements[0].Index = 99
	if err := m.Validate(); err == nil {
		t.Error("out-of-range replacement validated")
	}

	m2 := newMaster()
	m2.Variants[0].Covers.Set(2) // bitmap disagrees with replacements
	if err := m2.Validate(); err == nil {
		t.Error("bitmap mismatch validated")
	}

	m3 := newMaster()
	var dup Variant
	dup.AddReplacement(0, mapping(1, 7, 7))
	dup.Replacements = append(dup.Replacements, Replacement{Index: 0, Mapping: mapping(1, 8, 8)})
	m3.Variants = append(m3.Variants, dup)
	if err := m3.Validate(); err == nil {
		t.Error("duplicate replacement validated")
	}

	m4 := newMaster()
	var badnil Variant
	badnil.AddReplacement(0, Mapping{Class: l("C", 1)})
	m4.Variants = append(m4.Variants, badnil)
	if err := m4.Validate(); err == nil {
		t.Error("variant nil LOID validated")
	}
}

func TestMasterApply(t *testing.T) {
	m := newMaster()
	got := m.Apply(&m.Variants[1])
	if got[0] != mapping(1, 5, 5) || got[1] != m.Mappings[1] || got[2] != mapping(2, 6, 6) {
		t.Errorf("Apply = %v", got)
	}
	// Original untouched.
	if m.Mappings[0] != mapping(1, 1, 1) {
		t.Error("Apply mutated master")
	}
}

func TestNextVariant(t *testing.T) {
	m := newMaster()
	failed := NewBitmap(3)
	failed.Set(1)
	if i := m.NextVariant(0, failed); i != 0 {
		t.Errorf("NextVariant for entry 1 = %d, want 0 (variant 0 covers {1})", i)
	}
	failed = NewBitmap(3)
	failed.Set(2)
	if i := m.NextVariant(0, failed); i != 1 {
		t.Errorf("NextVariant for entry 2 = %d, want 1", i)
	}
	if i := m.NextVariant(2, failed); i != -1 {
		t.Errorf("NextVariant from 2 = %d, want -1", i)
	}
	none := NewBitmap(3)
	if i := m.NextVariant(0, none); i != -1 {
		t.Errorf("NextVariant with empty failure set = %d, want -1", i)
	}
}

func TestRequestListValidate(t *testing.T) {
	r := RequestList{}
	if err := r.Validate(); err == nil {
		t.Error("empty request list validated")
	}
	r.Masters = []Master{newMaster()}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
	r.Masters = append(r.Masters, Master{})
	if err := r.Validate(); err == nil {
		t.Error("request list with empty master validated")
	}
}

func TestFailureReasonString(t *testing.T) {
	for r, want := range map[FailureReason]string{
		FailureNone:      "none",
		FailureResources: "unable to obtain resources",
		FailureMalformed: "malformed schedule",
		FailureOther:     "other failure",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

func TestMappingString(t *testing.T) {
	s := mapping(1, 2, 3).String()
	if s != "C/1 -> (Host/2, Vault/3)" {
		t.Errorf("Mapping.String = %q", s)
	}
}

func TestBitmapGobRoundTrip(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitmap(0)
		for _, x := range idxs {
			b.Set(int(x % 1024))
		}
		data, err := b.GobEncode()
		if err != nil {
			return false
		}
		var out Bitmap
		if err := out.GobDecode(data); err != nil {
			return false
		}
		if out.Count() != b.Count() {
			return false
		}
		for _, i := range b.Bits() {
			if !out.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	var b Bitmap
	if err := b.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length payload accepted")
	}
}

func TestKofNValidate(t *testing.T) {
	hv := HostVault{Host: l("H", 1), Vault: l("V", 1)}
	cases := []struct {
		g  KofN
		ok bool
	}{
		{KofN{Class: l("C", 1), K: 1, Alternatives: []HostVault{hv}}, true},
		{KofN{K: 1, Alternatives: []HostVault{hv}}, false},                   // nil class
		{KofN{Class: l("C", 1), K: 0, Alternatives: []HostVault{hv}}, false}, // k < 1
		{KofN{Class: l("C", 1), K: 2, Alternatives: []HostVault{hv}}, false}, // k > n
		{KofN{Class: l("C", 1), K: 1, Alternatives: []HostVault{{}}}, false}, // nil alt
	}
	for i, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: err=%v ok=%v", i, err, c.ok)
		}
	}
	// Master.Validate covers KofN groups and allows mappings-free masters.
	m := Master{KofN: []KofN{{Class: l("C", 1), K: 1, Alternatives: []HostVault{hv}}}}
	if err := m.Validate(); err != nil {
		t.Errorf("k-of-n-only master: %v", err)
	}
}
