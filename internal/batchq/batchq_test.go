package batchq

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestImmediateDispatchWhenSlotsFree(t *testing.T) {
	q := New(Config{Name: "test", Slots: 2})
	var started []JobID
	onStart := func(id JobID) { started = append(started, id) }
	id1, err := q.Submit("a", 0, onStart)
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := q.Submit("b", 0, onStart)
	if len(started) != 2 || started[0] != id1 || started[1] != id2 {
		t.Fatalf("started = %v", started)
	}
	st := q.Stats()
	if st.Running != 2 || st.Queued != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueingBeyondSlots(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1})
	var started []string
	submit := func(name string) JobID {
		id, _ := q.Submit(name, 0, func(JobID) { started = append(started, name) })
		return id
	}
	a := submit("a")
	submit("b")
	submit("c")
	if len(started) != 1 || started[0] != "a" {
		t.Fatalf("started = %v", started)
	}
	if q.QueueLength() != 2 {
		t.Fatalf("QueueLength = %d", q.QueueLength())
	}
	if err := q.Complete(a); err != nil {
		t.Fatal(err)
	}
	// FCFS: b before c.
	if len(started) != 2 || started[1] != "b" {
		t.Fatalf("after complete, started = %v", started)
	}
}

func TestPriorityOrdering(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1, Policy: Priority})
	var order []string
	var runningID atomic.Uint64
	mk := func(name string, prio int) {
		q.Submit(name, prio, func(id JobID) {
			order = append(order, name)
			runningID.Store(uint64(id))
		})
	}
	mk("first", 0) // dispatches immediately, occupying the slot
	mk("low", 1)
	mk("high", 10)
	mk("mid", 5)
	mk("high2", 10)
	// Complete the runner four times; each completion dispatches the next
	// job by priority (FCFS within equal priorities).
	for i := 0; i < 4; i++ {
		if err := q.Complete(JobID(runningID.Load())); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"first", "high", "high2", "mid", "low"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDispatchDelay(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1, DispatchDelay: 30 * time.Millisecond})
	defer q.Close()
	started := make(chan time.Time, 1)
	t0 := time.Now()
	q.Submit("a", 0, func(JobID) { started <- time.Now() })
	select {
	case ts := <-started:
		if d := ts.Sub(t0); d < 25*time.Millisecond {
			t.Errorf("dispatched after %v, want >= ~30ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("job never dispatched")
	}
	st := q.Stats()
	if st.Running != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1})
	a, _ := q.Submit("a", 0, nil)
	b, _ := q.Submit("b", 0, nil)
	cStarted := false
	q.Submit("c", 0, func(JobID) { cStarted = true })

	if err := q.Cancel(b); err != nil {
		t.Fatal(err)
	}
	if s, _ := q.State(b); s != StateCancelled {
		t.Errorf("state(b) = %v", s)
	}
	q.Complete(a)
	if !cStarted {
		t.Error("c should start after a completes (b cancelled)")
	}
}

func TestCancelRunningJobFreesSlot(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1})
	a, _ := q.Submit("a", 0, nil)
	bStarted := false
	q.Submit("b", 0, func(JobID) { bStarted = true })
	if err := q.Cancel(a); err != nil {
		t.Fatal(err)
	}
	if !bStarted {
		t.Error("b should start after a cancelled")
	}
}

func TestCancelDelayedDispatchFreesSlot(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1, DispatchDelay: 20 * time.Millisecond})
	defer q.Close()
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	a, _ := q.Submit("a", 0, func(JobID) { close(aStarted) })
	q.Submit("b", 0, func(JobID) { close(bStarted) })
	// Cancel a while its dispatch timer is pending.
	if err := q.Cancel(a); err != nil {
		t.Fatal(err)
	}
	select {
	case <-bStarted:
	case <-time.After(2 * time.Second):
		t.Fatal("b never dispatched after cancelling a")
	}
	select {
	case <-aStarted:
		t.Error("cancelled job a started anyway")
	default:
	}
}

func TestErrorPaths(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1})
	if err := q.Complete(99); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Complete(unknown) = %v", err)
	}
	if err := q.Cancel(99); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel(unknown) = %v", err)
	}
	if _, err := q.State(99); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("State(unknown) = %v", err)
	}
	a, _ := q.Submit("a", 0, nil)
	q.Complete(a)
	if err := q.Complete(a); err == nil {
		t.Error("double Complete succeeded")
	}
	if err := q.Cancel(a); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel(done) = %v", err)
	}
	// Completing a queued (not yet running) job is an error.
	q.Submit("b", 0, nil) // running
	c, _ := q.Submit("c", 0, nil)
	if err := q.Complete(c); err == nil {
		t.Error("Complete(queued) succeeded")
	}
}

func TestCloseRejectsSubmit(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1})
	q.Close()
	if _, err := q.Submit("a", 0, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after close = %v", err)
	}
}

func TestWaitAccounting(t *testing.T) {
	q := New(Config{Name: "test", Slots: 1})
	var now atomic.Int64
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	q.SetClock(func() time.Time { return base.Add(time.Duration(now.Load())) })

	a, _ := q.Submit("a", 0, nil) // starts at t=0, wait 0
	q.Submit("b", 0, nil)         // queued
	now.Store(int64(10 * time.Second))
	q.Complete(a) // b starts at t=10s, wait 10s
	st := q.Stats()
	if st.TotalWait != 10*time.Second {
		t.Errorf("TotalWait = %v, want 10s", st.TotalWait)
	}
	if st.Done != 1 {
		t.Errorf("Done = %d", st.Done)
	}
}

func TestNewPanicsOnBadSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	New(Config{Name: "bad", Slots: 0})
}

func TestConcurrentSubmitCompleteStress(t *testing.T) {
	q := New(Config{Name: "stress", Slots: 4})
	var running sync.Map
	var maxRunning atomic.Int64
	var cur atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				done := make(chan JobID, 1)
				q.Submit("job", i%3, func(id JobID) {
					n := cur.Add(1)
					for {
						m := maxRunning.Load()
						if n <= m || maxRunning.CompareAndSwap(m, n) {
							break
						}
					}
					running.Store(id, true)
					done <- id
				})
				select {
				case id := <-done:
					cur.Add(-1)
					if err := q.Complete(id); err != nil {
						t.Errorf("Complete: %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Error("job never started")
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxRunning.Load() > 4 {
		t.Errorf("observed %d concurrent jobs, slots = 4", maxRunning.Load())
	}
	st := q.Stats()
	if st.Done != 400 {
		t.Errorf("Done = %d, want 400", st.Done)
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || Priority.String() != "priority" {
		t.Error("policy names")
	}
	for s, want := range map[State]string{
		StateQueued: "queued", StateRunning: "running",
		StateDone: "done", StateCancelled: "cancelled",
	} {
		if s.String() != want {
			t.Errorf("%v.String() = %q", int(s), s.String())
		}
	}
}
