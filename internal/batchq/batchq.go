// Package batchq simulates the queue management systems the paper's Batch
// Queue Host objects mediate.
//
// §3.1: "We are currently implementing Host Objects which interact with
// queue management systems such as LoadLeveler and Condor. ... most batch
// processing systems do not understand reservations, and so our basic
// Batch Queue Host maintains reservations in a fashion similar to the
// Unix Host Object." The paper lists Batch Queue Host implementations for
// Unix machines, LoadLeveler, and Codine.
//
// Since those proprietary systems are unavailable, this package provides
// a faithful synthetic equivalent: a job queue with a fixed number of
// execution slots, FCFS or priority ordering, and a configurable dispatch
// delay modelling scheduler cycle time. The Batch Queue Host (package
// host) submits object activations as jobs; the delay between submission
// and dispatch is exactly the behaviour that distinguishes batch-managed
// resources from interactive Unix hosts in the experiments.
package batchq

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"
	"time"

	"legion/internal/vclock"
)

// Policy selects the queue ordering discipline.
type Policy int

// Queue ordering disciplines.
const (
	// FCFS dispatches jobs in submission order (LoadLeveler default
	// class behaviour).
	FCFS Policy = iota
	// Priority dispatches the highest-priority job first, FCFS within a
	// priority level (Codine-style).
	Priority
)

// String names the policy.
func (p Policy) String() string {
	if p == Priority {
		return "priority"
	}
	return "fcfs"
}

// State is a job's lifecycle state.
type State int

// Job lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateCancelled
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return "cancelled"
	}
}

// JobID identifies a submitted job.
type JobID uint64

// Config parameterizes a Queue.
type Config struct {
	// Name labels the queue ("loadleveler", "codine", ...).
	Name string
	// Slots is the number of jobs that may run concurrently; must be >= 1.
	Slots int
	// Policy is the ordering discipline.
	Policy Policy
	// DispatchDelay is the simulated scheduler cycle: the minimum time
	// between a job reaching the head of the queue with a free slot and
	// its start callback running. Zero dispatches synchronously.
	DispatchDelay time.Duration
	// Clock supplies dispatch timers and wait-time accounting; nil means
	// the wall clock.
	Clock vclock.Clock
}

// Errors returned by Queue operations.
var (
	ErrUnknownJob = errors.New("batchq: unknown job")
	ErrClosed     = errors.New("batchq: queue closed")
)

// job is the internal job record.
type job struct {
	id        JobID
	name      string
	priority  int
	state     State
	submitted time.Time
	started   time.Time
	onStart   func(JobID)
	seq       uint64 // FCFS tiebreak
	index     int    // heap index
}

// jobHeap orders queued jobs per the policy.
type jobHeap struct {
	jobs   []*job
	policy Policy
}

func (h *jobHeap) Len() int { return len(h.jobs) }

func (h *jobHeap) Less(i, j int) bool {
	a, b := h.jobs[i], h.jobs[j]
	if h.policy == Priority && a.priority != b.priority {
		return a.priority > b.priority // higher priority first
	}
	return a.seq < b.seq
}

func (h *jobHeap) Swap(i, j int) {
	h.jobs[i], h.jobs[j] = h.jobs[j], h.jobs[i]
	h.jobs[i].index = i
	h.jobs[j].index = j
}

func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.index = len(h.jobs)
	h.jobs = append(h.jobs, j)
}

func (h *jobHeap) Pop() any {
	old := h.jobs
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	h.jobs = old[:n-1]
	return j
}

// Stats summarizes queue occupancy.
type Stats struct {
	Queued    int
	Running   int
	Done      int
	Cancelled int
	// TotalWait accumulates queued-to-started wait across dispatched
	// jobs; TotalWait/Done approximates mean queue wait.
	TotalWait time.Duration
}

// Queue is a simulated batch queue management system. It is safe for
// concurrent use.
type Queue struct {
	cfg Config

	mu      sync.Mutex
	nextID  JobID
	nextSeq uint64
	pending jobHeap
	jobs    map[JobID]*job
	running int
	stats   Stats
	closed  bool
	timers  map[vclock.Timer]struct{}
	clock   vclock.Clock
	now     func() time.Time
}

// New creates a Queue. It panics on a non-positive slot count, which is a
// configuration bug.
func New(cfg Config) *Queue {
	if cfg.Slots < 1 {
		panic(fmt.Sprintf("batchq: %q: slots must be >= 1, got %d", cfg.Name, cfg.Slots))
	}
	clock := vclock.Default(cfg.Clock)
	return &Queue{
		cfg:     cfg,
		jobs:    make(map[JobID]*job),
		timers:  make(map[vclock.Timer]struct{}),
		pending: jobHeap{policy: cfg.Policy},
		clock:   clock,
		now:     clock.Now,
	}
}

// Config returns the queue's configuration.
func (q *Queue) Config() Config { return q.cfg }

// SetClock overrides the queue's wait-time accounting clock (dispatch
// delay still uses real timers).
func (q *Queue) SetClock(now func() time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.now = now
}

// Submit enqueues a job. onStart, if non-nil, runs when the job is
// dispatched to a slot — synchronously within Submit when a slot is free
// and DispatchDelay is zero, otherwise on a timer or a later Complete/
// Cancel call. onStart must not block.
func (q *Queue) Submit(name string, priority int, onStart func(JobID)) (JobID, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, ErrClosed
	}
	q.nextID++
	q.nextSeq++
	j := &job{
		id:        q.nextID,
		name:      name,
		priority:  priority,
		state:     StateQueued,
		submitted: q.now(),
		onStart:   onStart,
		seq:       q.nextSeq,
	}
	q.jobs[j.id] = j
	heap.Push(&q.pending, j)
	starts := q.fillSlotsLocked()
	q.mu.Unlock()
	runStarts(starts)
	return j.id, nil
}

// fillSlotsLocked dispatches queued jobs into free slots. It returns the
// start callbacks to run after the lock is released (zero-delay case);
// delayed dispatches are armed on timers.
func (q *Queue) fillSlotsLocked() []func() {
	var starts []func()
	for q.running < q.cfg.Slots && q.pending.Len() > 0 {
		j := heap.Pop(&q.pending).(*job)
		q.running++
		if q.cfg.DispatchDelay <= 0 {
			q.startLocked(j)
			if j.onStart != nil {
				cb, id := j.onStart, j.id
				starts = append(starts, func() { cb(id) })
			}
			continue
		}
		var tm vclock.Timer
		tm = q.clock.AfterFunc(q.cfg.DispatchDelay, func() {
			q.mu.Lock()
			delete(q.timers, tm)
			if q.closed || j.state != StateQueued {
				// Cancelled while waiting for dispatch: free the slot.
				q.running--
				more := q.fillSlotsLocked()
				q.mu.Unlock()
				runStarts(more)
				return
			}
			q.startLocked(j)
			cb, id := j.onStart, j.id
			q.mu.Unlock()
			if cb != nil {
				cb(id)
			}
		})
		q.timers[tm] = struct{}{}
	}
	return starts
}

func runStarts(starts []func()) {
	for _, s := range starts {
		s()
	}
}

func (q *Queue) startLocked(j *job) {
	j.state = StateRunning
	j.started = q.now()
	q.stats.TotalWait += j.started.Sub(j.submitted)
}

// Complete marks a running job finished, freeing its slot. Completing a
// queued job is an error (it has not started); use Cancel.
func (q *Queue) Complete(id JobID) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if j.state != StateRunning {
		q.mu.Unlock()
		return fmt.Errorf("batchq: complete job %d in state %v", id, j.state)
	}
	j.state = StateDone
	q.running--
	q.stats.Done++
	starts := q.fillSlotsLocked()
	q.mu.Unlock()
	runStarts(starts)
	return nil
}

// Cancel removes a job. A queued job is dropped; a running job's slot is
// freed (the caller is responsible for killing whatever it started).
func (q *Queue) Cancel(id JobID) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.state == StateDone || j.state == StateCancelled {
		q.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	wasRunning := j.state == StateRunning
	wasQueued := j.state == StateQueued
	j.state = StateCancelled
	q.stats.Cancelled++
	if wasQueued && j.index >= 0 {
		heap.Remove(&q.pending, j.index)
	}
	var starts []func()
	if wasRunning {
		q.running--
		starts = q.fillSlotsLocked()
	}
	q.mu.Unlock()
	runStarts(starts)
	return nil
}

// Forget drops a terminal (done or cancelled) job's record, so callers
// that submit an unbounded stream of jobs (e.g. an admission controller
// reusing the queue's priority ordering) do not grow the job map without
// limit. Forgetting a queued or running job is an error — it still owns
// heap or slot state.
func (q *Queue) Forget(id JobID) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	if j.state != StateDone && j.state != StateCancelled {
		return fmt.Errorf("batchq: forget job %d in state %v", id, j.state)
	}
	delete(q.jobs, id)
	return nil
}

// State returns a job's lifecycle state.
func (q *Queue) State(id JobID) (State, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return j.state, nil
}

// Stats returns a snapshot of queue occupancy and accounting.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Queued = q.pending.Len()
	s.Running = q.running
	return s
}

// QueueLength returns the number of jobs waiting for a slot.
func (q *Queue) QueueLength() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.Len()
}

// Close stops the queue: pending timers are cancelled and future Submits
// fail. Running jobs are left to their owners.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	for tm := range q.timers {
		tm.Stop()
		delete(q.timers, tm)
	}
}
