package opr

import (
	"errors"
	"testing"
	"testing/quick"

	"legion/internal/loid"
)

var obj = loid.LOID{Domain: "uva", Class: "Worker", Instance: 3}

type workerState struct {
	Iteration int
	Grid      []float64
	Name      string
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := workerState{Iteration: 42, Grid: []float64{1.5, 2.5}, Name: "w"}
	o, err := Encode(obj, 7, in)
	if err != nil {
		t.Fatal(err)
	}
	if o.Object != obj || o.Class != "Worker" || o.Version != 7 {
		t.Errorf("metadata: %+v", o)
	}
	if o.Size() != len(o.Payload) || o.Size() == 0 {
		t.Errorf("Size = %d", o.Size())
	}
	var out workerState
	if err := o.Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Iteration != in.Iteration || out.Name != in.Name ||
		len(out.Grid) != 2 || out.Grid[1] != 2.5 {
		t.Errorf("round trip: %+v", out)
	}
}

func TestEncodeNilLOID(t *testing.T) {
	if _, err := Encode(loid.Nil, 1, 5); err == nil {
		t.Error("nil LOID accepted")
	}
}

func TestEncodeUnencodable(t *testing.T) {
	if _, err := Encode(obj, 1, make(chan int)); err == nil {
		t.Error("channel state accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	o, err := Encode(obj, 1, workerState{Iteration: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Verify(); err != nil {
		t.Fatalf("fresh OPR fails Verify: %v", err)
	}
	o.Payload[0] ^= 0xff
	if err := o.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Verify after corruption = %v, want ErrCorrupt", err)
	}
	var out workerState
	if err := o.Decode(&out); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Decode after corruption = %v, want ErrCorrupt", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	o, _ := Encode(obj, 1, workerState{Iteration: 9})
	c := o.Clone()
	c.Payload[0] ^= 0xff
	if err := o.Verify(); err != nil {
		t.Error("mutating clone corrupted original")
	}
	if err := c.Verify(); err == nil {
		t.Error("clone should be corrupt")
	}
}

func TestDecodeTypeMismatch(t *testing.T) {
	o, _ := Encode(obj, 1, workerState{Iteration: 1})
	var wrong chan int
	if err := o.Decode(&wrong); err == nil {
		t.Error("decode into wrong type succeeded")
	}
}

// Property: any byte-slice state survives encode/decode, and any single
// byte flip in the payload is detected.
func TestRoundTripAndTamperProperty(t *testing.T) {
	f := func(data []byte, flip uint16) bool {
		o, err := Encode(obj, 1, data)
		if err != nil {
			return false
		}
		var out []byte
		if err := o.Decode(&out); err != nil {
			return false
		}
		if string(out) != string(data) {
			return false
		}
		if len(o.Payload) == 0 {
			return true
		}
		o.Payload[int(flip)%len(o.Payload)] ^= 0x01
		return errors.Is(o.Verify(), ErrCorrupt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
