// Package opr implements the Object Persistent Representation.
//
// The paper (§2.1): "To be executed, a Legion object must have a Vault to
// hold its persistent state in an Object Persistent Representation (OPR).
// The OPR is used for migration and for shutdown/restart purposes. All
// Legion objects automatically support shutdown and restart, and
// therefore any active object can be migrated by shutting it down, moving
// the passive state to a new Vault if necessary, and activating the
// object on another host."
//
// An OPR here is the gob-serialized passive state of an object plus
// integrity metadata: the owning LOID, a monotonically increasing
// version, a save timestamp, and a SHA-256 digest over the payload so a
// Vault (or the object itself, on restart) can detect corruption.
package opr

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"legion/internal/loid"
)

// OPR is the passive, storable representation of a Legion object.
type OPR struct {
	// Object is the LOID of the object this state belongs to.
	Object loid.LOID
	// Class is the object's class name, kept denormalized so a Vault can
	// answer "what kinds of OPRs do you hold" without decoding payloads.
	Class string
	// Version increases with every save of the same object; a Vault keeps
	// only the newest version.
	Version uint64
	// SavedAt is when the state was captured.
	SavedAt time.Time
	// Payload is the gob-encoded object state.
	Payload []byte
	// Digest is the SHA-256 hash of Payload.
	Digest [sha256.Size]byte
}

// ErrCorrupt reports that an OPR's payload does not match its digest.
var ErrCorrupt = errors.New("opr: payload digest mismatch")

// Encode captures an object's state into an OPR. The state value must be
// gob-encodable.
func Encode(object loid.LOID, version uint64, state any) (*OPR, error) {
	if object.IsNil() {
		return nil, errors.New("opr: nil object LOID")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return nil, fmt.Errorf("opr: encode state for %v: %w", object, err)
	}
	payload := buf.Bytes()
	return &OPR{
		Object:  object,
		Class:   object.Class,
		Version: version,
		SavedAt: time.Now(),
		Payload: payload,
		Digest:  sha256.Sum256(payload),
	}, nil
}

// Verify checks the payload against the stored digest.
func (o *OPR) Verify() error {
	if sha256.Sum256(o.Payload) != o.Digest {
		return fmt.Errorf("%w (object %v)", ErrCorrupt, o.Object)
	}
	return nil
}

// Decode verifies integrity and decodes the payload into state, which
// must be a pointer to the same type passed to Encode.
func (o *OPR) Decode(state any) error {
	if err := o.Verify(); err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(o.Payload)).Decode(state); err != nil {
		return fmt.Errorf("opr: decode state for %v: %w", o.Object, err)
	}
	return nil
}

// Clone returns a deep copy; Vaults hand out clones so callers cannot
// mutate stored state.
func (o *OPR) Clone() *OPR {
	c := *o
	c.Payload = append([]byte(nil), o.Payload...)
	return &c
}

// Size returns the payload size in bytes, used for Vault capacity
// accounting.
func (o *OPR) Size() int { return len(o.Payload) }

// Persistent is implemented by objects that support Legion's automatic
// shutdown/restart protocol. SaveState returns a gob-encodable snapshot
// of the object's state; RestoreState reinstates a snapshot produced by
// SaveState (possibly by another instance, on another host — that is
// migration).
type Persistent interface {
	SaveState() (any, error)
	RestoreState(state *OPR) error
}
