package opr

import "legion/internal/wire"

// AppendWire appends the OPR in the ORB's binary wire format.
func (o *OPR) AppendWire(b []byte) []byte {
	b = o.Object.AppendWire(b)
	b = wire.AppendString(b, o.Class)
	b = wire.AppendUvarint(b, o.Version)
	b = wire.AppendTime(b, o.SavedAt)
	b = wire.AppendBytes(b, o.Payload)
	return append(b, o.Digest[:]...)
}

// DecodeWire consumes an OPR encoded by AppendWire, reusing the payload
// slice's capacity.
func (o *OPR) DecodeWire(r *wire.Reader) {
	o.Object.DecodeWire(r)
	o.Class = r.Sym()
	o.Version = r.Uvarint()
	o.SavedAt = r.Time()
	o.Payload = r.Bytes(o.Payload)
	if r.Err != nil {
		return
	}
	if len(r.B) < len(o.Digest) {
		r.Err = wire.ErrTruncated
		return
	}
	copy(o.Digest[:], r.B)
	r.B = r.B[len(o.Digest):]
}

// AppendWirePtr appends a presence byte and, when o is non-nil, the OPR
// — the encoding of the protocol's optional *OPR fields.
func AppendWirePtr(b []byte, o *OPR) []byte {
	if o == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return o.AppendWire(b)
}

// DecodeWirePtr consumes an optional OPR encoded by AppendWirePtr,
// reusing reuse (including its payload capacity) when present.
func DecodeWirePtr(r *wire.Reader, reuse *OPR) *OPR {
	if r.Err != nil {
		return nil
	}
	if len(r.B) < 1 {
		r.Err = wire.ErrTruncated
		return nil
	}
	present := r.B[0]
	r.B = r.B[1:]
	if present == 0 {
		return nil
	}
	o := reuse
	if o == nil {
		o = new(OPR)
	}
	o.DecodeWire(r)
	return o
}
