// Hierarchical Collections (paper §4): "Collection data may be pulled
// or pushed", and Collections "can be organized so that each covers a
// subset of the metasystem's resources". The Router is that
// organization: a MetaCollection fronting N per-domain Collection
// shards. It speaks the same Figure 4 interface as a Collection, so
// Schedulers, the Data Collection Daemon, and Hosts talk to it without
// knowing the directory is partitioned:
//
//   - Queries scatter to every shard concurrently, each under its own
//     deadline, and the partial results are merged. A shard that times
//     out, refuses, or is breaker-open contributes zero records and a
//     legion_collection_shard_skips increment instead of failing the
//     whole query — callers see the surviving subset plus a skipped
//     count (proto.QueryReply.SkippedShards) and decide for themselves
//     whether partial data is acceptable.
//   - Mutations (Join/Leave/Update and coalesced batches) route to the
//     member's owning shard, by default a hash of the member LOID;
//     RouteByDomain pins whole administrative domains to shards, the
//     per-site organization the paper sketches.
package collection

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"legion/internal/attr"
	"legion/internal/fanout"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/query"
	"legion/internal/resilient"
	"legion/internal/telemetry"
)

// ErrNoShards reports a Router built over zero shards.
var ErrNoShards = errors.New("collection: router has no shards")

// ErrAllShardsFailed reports a routed query in which no shard answered.
var ErrAllShardsFailed = errors.New("collection: every shard failed")

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Shards are the Collection (or nested Router) LOIDs, in index
	// order. Route values are reduced modulo len(Shards).
	Shards []loid.LOID
	// ShardTimeout bounds each shard's portion of a scattered query or
	// forwarded mutation; zero means 2 seconds. The caller's context
	// deadline still applies on top.
	ShardTimeout time.Duration
	// Parallelism bounds the scatter fan-out; zero means 8, 1 walks the
	// shards serially.
	Parallelism int
	// Route maps a member to a shard index (reduced modulo the shard
	// count). Nil hashes the member's full LOID; use RouteByDomain to
	// pin administrative domains to shards.
	Route func(member loid.LOID) int
	// Retry shapes transport-fault retries for shard calls; the zero
	// value uses resilient defaults.
	Retry resilient.Policy
	// Breaker tunes per-shard circuit breakers; ignored when Breakers is
	// set.
	Breaker resilient.BreakerConfig
	// Breakers, when non-nil, shares an existing breaker pool (e.g. the
	// Metasystem's domain-wide set) so a shard that fails scheduler
	// queries also fails fast here.
	Breakers *resilient.BreakerSet
}

// Router is a MetaCollection: it implements the Collection's Figure 4
// orb interface over a set of shards. Safe for concurrent use.
type Router struct {
	*orb.ServiceObject

	rt    *orb.Runtime
	cfg   RouterConfig
	call  *resilient.Caller
	cache *query.ParseCache

	met routerMetrics
}

type routerMetrics struct {
	queries    *telemetry.Counter
	partials   *telemetry.Counter
	shardSkips *telemetry.Counter
	queryTime  *telemetry.Histogram
}

// RouteByDomain returns a routing function that sends every member of
// one administrative domain to the same shard — the paper's per-site
// Collection organization. Members of domains absent from assign fall
// back to a hash of the domain name, so an unlisted site still lands
// deterministically on one shard.
func RouteByDomain(assign map[string]int) func(loid.LOID) int {
	return func(member loid.LOID) int {
		if idx, ok := assign[member.Domain]; ok {
			return idx
		}
		h := fnv.New32a()
		h.Write([]byte(member.Domain))
		return int(h.Sum32())
	}
}

// hashLOID is the default route: FNV over the canonical LOID text.
func hashLOID(member loid.LOID) int {
	h := fnv.New32a()
	h.Write([]byte(member.String()))
	return int(h.Sum32())
}

// NewRouter creates a Router over cfg.Shards, registers its orb methods
// and itself with rt. It panics on an empty shard list — a Router with
// nothing behind it is a configuration bug, not a runtime condition.
func NewRouter(rt *orb.Runtime, cfg RouterConfig) *Router {
	if len(cfg.Shards) == 0 {
		panic(ErrNoShards)
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	if cfg.Route == nil {
		cfg.Route = hashLOID
	}
	call := resilient.NewCaller(rt, cfg.Retry, cfg.Breaker)
	if cfg.Breakers != nil {
		call = resilient.NewCallerWith(rt, cfg.Retry, cfg.Breakers)
	}
	reg := rt.Metrics()
	r := &Router{
		ServiceObject: orb.NewServiceObject(rt.Mint("MetaCollection")),
		rt:            rt,
		cfg:           cfg,
		call:          call,
		cache:         query.NewParseCache(0),
		met: routerMetrics{
			queries:    reg.Counter("legion_collection_router_queries_total"),
			partials:   reg.Counter("legion_collection_router_partial_total"),
			shardSkips: reg.Counter("legion_collection_shard_skips"),
			queryTime:  reg.Histogram("legion_collection_router_query_seconds", telemetry.LatencyBuckets),
		},
	}
	r.installMethods()
	rt.Register(r)
	return r
}

// Shards returns the shard LOIDs in index order.
func (r *Router) Shards() []loid.LOID {
	return append([]loid.LOID(nil), r.cfg.Shards...)
}

// ShardFor returns the shard owning a member's record.
func (r *Router) ShardFor(member loid.LOID) loid.LOID {
	return r.cfg.Shards[r.shardIndex(member)]
}

func (r *Router) shardIndex(member loid.LOID) int {
	i := r.cfg.Route(member) % len(r.cfg.Shards)
	if i < 0 {
		i += len(r.cfg.Shards)
	}
	return i
}

// shardCall forwards one call to a shard under the per-shard deadline.
func (r *Router) shardCall(ctx context.Context, shard loid.LOID, method string, arg any) (any, error) {
	cctx, cancel := r.rt.Clock().WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	return r.call.Call(cctx, shard, method, arg)
}

// Join routes a member's registration to its owning shard.
func (r *Router) Join(ctx context.Context, member loid.LOID, attrs []attr.Pair, credential string) error {
	if member.IsNil() {
		return errors.New("collection: nil member LOID")
	}
	_, err := r.shardCall(ctx, r.ShardFor(member), proto.MethodJoinCollection,
		proto.JoinArgs{Joiner: member, Attrs: attrs, Credential: credential})
	return err
}

// Leave routes a member's removal to its owning shard.
func (r *Router) Leave(ctx context.Context, member loid.LOID, credential string) error {
	_, err := r.shardCall(ctx, r.ShardFor(member), proto.MethodLeaveCollection,
		proto.LeaveArgs{Leaver: member, Credential: credential})
	return err
}

// Update routes a member's description push to its owning shard.
func (r *Router) Update(ctx context.Context, member loid.LOID, attrs []attr.Pair, credential string) error {
	_, err := r.shardCall(ctx, r.ShardFor(member), proto.MethodUpdateCollectionEntry,
		proto.UpdateArgs{Member: member, Attrs: attrs, Credential: credential})
	return err
}

// ApplyBatch splits a coalesced update batch per owning shard —
// preserving each member's entry order — and forwards the sub-batches
// concurrently. It returns the summed reply; a failed shard's entries
// count as dropped (the sender may retry them next flush).
func (r *Router) ApplyBatch(ctx context.Context, entries []proto.BatchEntry, credential string) (proto.BatchUpdateReply, error) {
	perShard := make(map[int][]proto.BatchEntry)
	for _, e := range entries {
		i := r.shardIndex(e.Member)
		perShard[i] = append(perShard[i], e)
	}
	idxs := make([]int, 0, len(perShard))
	for i := range perShard {
		idxs = append(idxs, i)
	}
	replies := make([]proto.BatchUpdateReply, len(idxs))
	errs := make([]error, len(idxs))
	fanout.Do(r.cfg.Parallelism, len(idxs), func(k int) {
		sub := perShard[idxs[k]]
		res, err := r.shardCall(ctx, r.cfg.Shards[idxs[k]], proto.MethodUpdateCollectionBatch,
			proto.BatchUpdateArgs{Entries: sub, Credential: credential})
		if err != nil {
			errs[k] = err
			replies[k] = proto.BatchUpdateReply{Dropped: len(sub)}
			return
		}
		if rep, ok := res.(proto.BatchUpdateReply); ok {
			replies[k] = rep
		}
	})
	var out proto.BatchUpdateReply
	var firstErr error
	for k := range replies {
		out.Applied += replies[k].Applied
		out.Dropped += replies[k].Dropped
		if errs[k] != nil && firstErr == nil {
			firstErr = errs[k]
		}
	}
	return out, firstErr
}

// Query is QueryCtx with a background context.
func (r *Router) Query(src string) ([]Record, error) {
	recs, _, err := r.QueryPartial(context.Background(), src)
	return recs, err
}

// QueryCtx scatters the query and merges the shard results, dropping
// the skipped-shard count for callers that only want records.
func (r *Router) QueryCtx(ctx context.Context, src string) ([]Record, error) {
	recs, _, err := r.QueryPartial(ctx, src)
	return recs, err
}

// QueryPartial scatters a query-language expression to every shard
// concurrently, each under the per-shard deadline, and merges the
// results sorted by member LOID. skipped counts shards that contributed
// nothing — unreachable, timed out, or breaker-open. The call fails
// only when the query does not parse or every shard failed; anything
// less degrades to a partial result the caller can inspect.
func (r *Router) QueryPartial(ctx context.Context, src string) (recs []Record, skipped int, err error) {
	start := time.Now()
	r.met.queries.Inc()
	defer func() {
		r.met.queryTime.ObserveSince(start)
	}()
	// Reject malformed queries locally: a parse error is the caller's
	// bug, not a shard failure, and must not be mistaken for one.
	if _, _, perr := r.cache.Parse(src); perr != nil {
		return nil, 0, perr
	}
	n := len(r.cfg.Shards)
	replies := make([][]proto.CollectionRecord, n)
	subSkips := make([]int, n)
	errs := make([]error, n)
	fanout.Do(r.cfg.Parallelism, n, func(i int) {
		res, cerr := r.shardCall(ctx, r.cfg.Shards[i], proto.MethodQueryCollection,
			proto.QueryArgs{Query: src})
		if cerr != nil {
			errs[i] = cerr
			return
		}
		reply, ok := res.(proto.QueryReply)
		if !ok {
			errs[i] = fmt.Errorf("collection: shard %v: unexpected reply %T", r.cfg.Shards[i], res)
			return
		}
		replies[i] = reply.Records
		subSkips[i] = reply.SkippedShards // nested Routers propagate up
	})
	var firstErr error
	total := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			skipped++
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		skipped += subSkips[i]
		total += len(replies[i])
	}
	if skipped > 0 {
		r.met.shardSkips.Add(int64(skipped))
		r.met.partials.Inc()
	}
	if firstErr != nil && total == 0 && skipped >= n {
		return nil, skipped, fmt.Errorf("%w: %v", ErrAllShardsFailed, firstErr)
	}
	return mergeSorted(replies, total), skipped, nil
}

// mergeSorted k-way merges the per-shard replies — each already sorted
// by member, as Collection.QueryCtx guarantees — into one sorted result.
// Shards own disjoint member sets under any single routing function, but
// a member double-registered by an out-of-band Join must not appear
// twice; the lowest shard index wins. Merging the sorted runs directly
// (instead of a dedupe map plus a full re-sort) is what keeps the
// federated query's per-record cost at parity with a single Collection.
func mergeSorted(replies [][]proto.CollectionRecord, total int) []Record {
	// Zero-copy when at most one shard answered with records: each reply
	// slice is freshly built per query (by QueryCtx or decoded off the
	// wire), so handing it to the caller shares nothing with shard state.
	only := -1
	for i, run := range replies {
		if len(run) == 0 {
			continue
		}
		if only >= 0 {
			only = -1
			break
		}
		only = i
	}
	if only >= 0 {
		return replies[only]
	}
	if total == 0 {
		return []Record{}
	}
	recs := make([]Record, 0, total)
	heads := make([]int, len(replies))
	for {
		best := -1
		for i, run := range replies {
			if heads[i] >= len(run) {
				continue
			}
			if best < 0 || run[heads[i]].Member.Less(replies[best][heads[best]].Member) {
				best = i
			}
		}
		if best < 0 {
			return recs
		}
		cr := replies[best][heads[best]]
		heads[best]++
		// Skip the same member at any other shard's head (higher index).
		for i := best + 1; i < len(replies); i++ {
			if heads[i] < len(replies[i]) && replies[i][heads[i]].Member == cr.Member {
				heads[i]++
			}
		}
		recs = append(recs, cr)
	}
}

// installMethods exposes the Figure 4 interface (plus the batch
// extension) so remote runtimes address the Router exactly like a
// Collection.
func (r *Router) installMethods() {
	r.Handle(proto.MethodJoinCollection, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.JoinArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want JoinArgs, got %T", arg)
		}
		if err := r.Join(ctx, a.Joiner, a.Attrs, a.Credential); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	r.Handle(proto.MethodLeaveCollection, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.LeaveArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want LeaveArgs, got %T", arg)
		}
		if err := r.Leave(ctx, a.Leaver, a.Credential); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	r.Handle(proto.MethodUpdateCollectionEntry, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.UpdateArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want UpdateArgs, got %T", arg)
		}
		if err := r.Update(ctx, a.Member, a.Attrs, a.Credential); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	r.Handle(proto.MethodUpdateCollectionBatch, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.BatchUpdateArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want BatchUpdateArgs, got %T", arg)
		}
		reply, err := r.ApplyBatch(ctx, a.Entries, a.Credential)
		if err != nil && reply.Applied == 0 {
			return nil, err
		}
		return reply, nil
	})
	r.Handle(proto.MethodQueryCollection, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.QueryArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want QueryArgs, got %T", arg)
		}
		recs, skipped, err := r.QueryPartial(ctx, a.Query)
		if err != nil {
			return nil, err
		}
		out := make([]proto.CollectionRecord, len(recs))
		for i, rec := range recs {
			out[i] = proto.CollectionRecord{Member: rec.Member, Attrs: rec.Attrs}
		}
		return proto.QueryReply{Records: out, SkippedShards: skipped}, nil
	})
}
