package collection

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/query"
	"legion/internal/telemetry"
)

func member(i uint64) loid.LOID {
	return loid.LOID{Domain: "uva", Class: "Host", Instance: i}
}

func hostAttrs(os string, ver string, load float64) []attr.Pair {
	return []attr.Pair{
		{Name: "host_os_name", Value: attr.String(os)},
		{Name: "host_os_version", Value: attr.String(ver)},
		{Name: "host_load", Value: attr.Float(load)},
	}
}

func TestJoinQueryLeave(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	if err := c.Join(member(1), hostAttrs("IRIX", "5.3", 0.2), ""); err != nil {
		t.Fatal(err)
	}
	c.Join(member(2), hostAttrs("IRIX", "6.5", 0.9), "")
	c.Join(member(3), hostAttrs("Linux", "2.2", 0.1), "")
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}

	// The paper's IRIX 5.x query.
	recs, err := c.Query(`match("IRIX", $host_os_name) and match("5\..*", $host_os_version)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != member(1) {
		t.Fatalf("query result: %+v", recs)
	}

	if err := c.Leave(member(1), ""); err != nil {
		t.Fatal(err)
	}
	recs, _ = c.Query(`match("IRIX", $host_os_name)`)
	if len(recs) != 1 || recs[0].Member != member(2) {
		t.Fatalf("after leave: %+v", recs)
	}
	if err := c.Leave(member(1), ""); !errors.Is(err, ErrNotMember) {
		t.Errorf("double leave: %v", err)
	}
}

func TestJoinMergesAndNilMember(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	c.Join(member(1), hostAttrs("IRIX", "5.3", 0.2), "")
	// Re-join merges new attributes without dropping old ones.
	c.Join(member(1), []attr.Pair{{Name: "host_arch", Value: attr.String("mips")}}, "")
	recs, _ := c.Query(`$host_arch == "mips" and match("IRIX", $host_os_name)`)
	if len(recs) != 1 {
		t.Errorf("merged record should match: %+v", recs)
	}
	if err := c.Join(loid.Nil, nil, ""); err == nil {
		t.Error("nil member joined")
	}
}

func TestUpdate(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	c.Join(member(1), hostAttrs("IRIX", "5.3", 0.9), "")
	if err := c.Update(member(1), []attr.Pair{{Name: "host_load", Value: attr.Float(0.1)}}, ""); err != nil {
		t.Fatal(err)
	}
	recs, _ := c.Query(`$host_load < 0.5`)
	if len(recs) != 1 {
		t.Fatalf("after update: %+v", recs)
	}
	if err := c.Update(member(9), nil, ""); !errors.Is(err, ErrNotMember) {
		t.Errorf("update non-member: %v", err)
	}
	_, updates := c.Stats()
	if updates != 1 {
		t.Errorf("updates = %d", updates)
	}
}

func TestAuthorization(t *testing.T) {
	auth := func(op Op, member loid.LOID, credential string) error {
		if credential != "s3cret" {
			return fmt.Errorf("bad credential for %v on %v", op, member)
		}
		return nil
	}
	c := New(orb.NewRuntime("uva"), auth)
	if err := c.Join(member(1), nil, "wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("join with bad cred: %v", err)
	}
	if err := c.Join(member(1), nil, "s3cret"); err != nil {
		t.Fatal(err)
	}
	if err := c.Update(member(1), nil, "wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("update with bad cred: %v", err)
	}
	if err := c.Leave(member(1), "wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("leave with bad cred: %v", err)
	}
	if err := c.Leave(member(1), "s3cret"); err != nil {
		t.Fatal(err)
	}
	// Queries are never authenticated (read path).
	if _, err := c.Query("true"); err != nil {
		t.Errorf("query: %v", err)
	}
}

func TestQueryErrors(t *testing.T) {
	rt := orb.NewRuntime("uva")
	reg := telemetry.NewRegistry()
	rt.SetMetrics(reg)
	c := New(rt, nil)
	c.Join(member(1), hostAttrs("IRIX", "5.3", 0.2), "")
	c.Join(member(2), hostAttrs("Linux", "2.2", 0.1), "")
	// Make member 2's host_load a string so numeric comparisons on it
	// error during evaluation.
	c.Update(member(2), []attr.Pair{{Name: "host_load", Value: attr.String("busted")}}, "")
	if _, err := c.Query("((("); err == nil {
		t.Error("bad syntax accepted")
	}
	// A type error on one record skips that record — counted — and
	// returns the rest, rather than hiding every resource behind one bad
	// value.
	recs, err := c.Query(`$host_load < 5`)
	if err != nil {
		t.Fatalf("query with one bad record: %v", err)
	}
	if len(recs) != 1 || recs[0].Member != member(1) {
		t.Errorf("bad record not skipped: %+v", recs)
	}
	if got := reg.CounterValue("legion_collection_query_eval_skips"); got != 1 {
		t.Errorf("eval skips = %d, want 1", got)
	}
	// Missing attributes are not errors: record simply does not match.
	recs, err = c.Query(`$no_such_attr == 1`)
	if err != nil || len(recs) != 0 {
		t.Errorf("missing attr: %v %v", recs, err)
	}
	if got := reg.CounterValue("legion_collection_query_eval_skips"); got != 1 {
		t.Errorf("eval skips after missing-attr query = %d, want 1", got)
	}
}

// TestQueryDoesNotHoldLockDuringEval is the regression test for the
// pre-COW behaviour where Query held the Collection RLock across
// evaluation and injected functions, so one slow NWS-style func stalled
// every Join/Update until the whole scan finished.
func TestQueryDoesNotHoldLockDuringEval(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	for i := uint64(1); i <= 4; i++ {
		c.Join(member(i), hostAttrs("Linux", "2.2", 0.5), "")
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.InjectFunc("slow_forecast", func(query.Record, []attr.Value) (attr.Value, error) {
		once.Do(func() { close(entered) })
		<-release
		return attr.Float(0.1), nil
	})

	queryDone := make(chan error, 1)
	go func() {
		_, err := c.Query(`slow_forecast() < 0.5`)
		queryDone <- err
	}()
	<-entered // the query is now mid-evaluation

	// Join and Update must complete while the query is still blocked
	// inside the injected function.
	writeDone := make(chan struct{})
	go func() {
		c.Join(member(99), hostAttrs("IRIX", "5.3", 0.2), "")
		c.Update(member(1), []attr.Pair{{Name: "host_load", Value: attr.Float(0.9)}}, "")
		close(writeDone)
	}()
	select {
	case <-writeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Join/Update blocked behind an in-flight query evaluation")
	}

	close(release)
	if err := <-queryDone; err != nil {
		t.Fatalf("query: %v", err)
	}
}

// TestQuerySnapshotIsolation: a query captures a consistent snapshot; a
// concurrent Update neither corrupts its results nor leaks into the
// already-captured records.
func TestQuerySnapshotIsolation(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	c.Join(member(1), hostAttrs("IRIX", "5.3", 0.2), "")
	recs, err := c.Query(`$host_load < 0.5`)
	if err != nil || len(recs) != 1 {
		t.Fatalf("query: %v %v", recs, err)
	}
	// Mutating the member after the query must not change the returned
	// snapshot (results share the record's immutable pairs).
	c.Update(member(1), []attr.Pair{{Name: "host_load", Value: attr.Float(0.99)}}, "")
	for _, p := range recs[0].Attrs {
		if p.Name == "host_load" {
			if f, _ := p.Value.AsFloat(); f != 0.2 {
				t.Errorf("snapshot mutated: host_load = %v", p.Value)
			}
		}
	}
}

func TestQueryDeterministicOrder(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	for i := uint64(1); i <= 10; i++ {
		c.Join(member(i), hostAttrs("Linux", "2.2", 0.1), "")
	}
	recs, _ := c.Query("true")
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Member.Less(recs[i].Member) {
			t.Fatalf("results not sorted: %v before %v", recs[i-1].Member, recs[i].Member)
		}
	}
}

func TestFunctionInjection(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	c.Join(member(1), []attr.Pair{
		{Name: "host_load_history", Value: attr.List(attr.Float(0.9), attr.Float(0.8), attr.Float(0.7))},
	}, "")
	c.Join(member(2), []attr.Pair{
		{Name: "host_load_history", Value: attr.List(attr.Float(0.1), attr.Float(0.2), attr.Float(0.3))},
	}, "")
	// Inject a trend-aware forecaster (NWS-style): mean of history.
	c.InjectFunc("forecast_load", func(rec query.Record, _ []attr.Value) (attr.Value, error) {
		h, ok := rec.Lookup("host_load_history")
		if !ok || h.Len() == 0 {
			return attr.Value{}, errors.New("no history")
		}
		var sum float64
		for i := 0; i < h.Len(); i++ {
			f, _ := h.At(i).AsFloat()
			sum += f
		}
		return attr.Float(sum / float64(h.Len())), nil
	})
	recs, err := c.Query(`forecast_load() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != member(2) {
		t.Errorf("forecast query: %+v", recs)
	}
}

func TestPrune(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	now := base
	var mu sync.Mutex
	c.SetClock(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	c.Join(member(1), nil, "")
	mu.Lock()
	now = base.Add(time.Hour)
	mu.Unlock()
	c.Join(member(2), nil, "")
	if n := c.Prune(base.Add(30 * time.Minute)); n != 1 {
		t.Errorf("Prune = %d", n)
	}
	if c.Size() != 1 {
		t.Errorf("Size after prune = %d", c.Size())
	}
}

func TestOrbProtocol(t *testing.T) {
	rt := orb.NewRuntime("uva")
	c := New(rt, nil)
	ctx := context.Background()

	if _, err := rt.Call(ctx, c.LOID(), proto.MethodJoinCollection, proto.JoinArgs{
		Joiner: member(1), Attrs: hostAttrs("IRIX", "5.3", 0.2),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call(ctx, c.LOID(), proto.MethodUpdateCollectionEntry, proto.UpdateArgs{
		Member: member(1), Attrs: []attr.Pair{{Name: "host_load", Value: attr.Float(0.7)}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call(ctx, c.LOID(), proto.MethodQueryCollection, proto.QueryArgs{
		Query: `$host_load > 0.5`,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := res.(proto.QueryReply).Records
	if len(recs) != 1 || recs[0].Member != member(1) {
		t.Fatalf("query over orb: %+v", recs)
	}
	if _, err := rt.Call(ctx, c.LOID(), proto.MethodLeaveCollection, proto.LeaveArgs{
		Leaver: member(1),
	}); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 0 {
		t.Errorf("Size = %d", c.Size())
	}
	// Bad arg types.
	for _, m := range []string{proto.MethodJoinCollection, proto.MethodLeaveCollection,
		proto.MethodUpdateCollectionEntry, proto.MethodQueryCollection} {
		if _, err := rt.Call(ctx, c.LOID(), m, 42); err == nil {
			t.Errorf("%s accepted bad arg", m)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := member(uint64(g + 1))
			c.Join(m, hostAttrs("Linux", "2.2", 0.5), "")
			for i := 0; i < 100; i++ {
				c.Update(m, []attr.Pair{{Name: "host_load", Value: attr.Float(float64(i) / 100)}}, "")
				if _, err := c.Query(`$host_load >= 0`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	q, u := c.Stats()
	if q != 800 || u != 800 {
		t.Errorf("stats = %d queries %d updates", q, u)
	}
}
