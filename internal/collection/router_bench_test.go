package collection

import (
	"context"
	"fmt"
	"testing"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/telemetry"
)

// BenchmarkRouterOverhead isolates what the federation layer adds on
// top of the shards' own query work: the empty-result pair prices the
// fixed per-query cost (fan-out goroutines, per-shard deadlines, the
// resilient call stack), the full-result pair prices the per-record
// merge. The "direct" baselines query one shard's Collection
// in-process. Guards the E9 "no worse than a single Collection" bar at
// the unit level.
func BenchmarkRouterOverhead(b *testing.B) {
	rt := orb.NewRuntime("uva")
	rt.SetMetrics(telemetry.NewDisabled())
	loids := make([]loid.LOID, 4)
	colls := make([]*Collection, 4)
	for i := range loids {
		colls[i] = New(rt, nil)
		loids[i] = colls[i].LOID()
	}
	r := NewRouter(rt, RouterConfig{Shards: loids})
	ctx := context.Background()
	for i := 0; i < 10000; i++ {
		m := loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)}
		r.Join(ctx, m, []attr.Pair{{Name: "host_zone", Value: attr.String(fmt.Sprintf("z%d", i%20))}}, "")
	}
	b.Run("empty-result-router", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.QueryPartial(ctx, `$host_zone == "z99"`)
		}
	})
	b.Run("empty-result-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			colls[0].Query(`$host_zone == "z99"`)
		}
	})
	b.Run("full-result-router", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.QueryPartial(ctx, `$host_zone == "z3"`)
		}
	})
	b.Run("full-result-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			colls[0].Query(`$host_zone == "z3"`)
		}
	})
}
