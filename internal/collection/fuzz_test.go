package collection

import (
	"fmt"
	"sort"
	"testing"

	"legion/internal/attr"
	"legion/internal/orb"
)

// fuzzKeys mixes indexed keys (see DefaultIndexedKeys) with unindexed
// ones, so generated queries exercise both the pruned path and the
// fall-back full scan, and conjunctions that mix the two.
var fuzzKeys = []string{
	"host_arch", "host_zone", "host_alive", "host_os_name", // indexed
	"host_load", "host_cpus", "note", // unindexed
}

var fuzzStrings = []string{"x86", "mips", "sparc", "z1", "z2", ""}

// fuzzValue derives an attribute value from one byte, covering every
// Value kind plus the int/float equality edge (attr.Int(3) equals
// attr.Float(3); the index's canonical() must bucket them together).
func fuzzValue(b byte) attr.Value {
	switch b % 5 {
	case 0:
		return attr.String(fuzzStrings[int(b/5)%len(fuzzStrings)])
	case 1:
		return attr.Float(float64(int(b)-128) / 16)
	case 2:
		return attr.Int(int64(b%8) - 3)
	case 3:
		return attr.Float(float64(b % 8)) // collides with Int buckets
	default:
		return attr.Bool(b%2 == 0)
	}
}

// buildFromBytes deterministically decodes data into a member→attrs
// population and applies it, in order, to every given Collection —
// joins, re-join merges, updates, and leaves, so index maintenance
// (insert/replace/remove) is exercised, not just bulk load.
func buildFromBytes(data []byte, colls ...*Collection) {
	i := 0
	next := func() (byte, bool) {
		if i >= len(data) {
			return 0, false
		}
		b := data[i]
		i++
		return b, true
	}
	for {
		op, ok := next()
		if !ok {
			return
		}
		m := member(uint64(op%16) + 1) // 16 members → re-joins and updates happen
		switch op % 4 {
		case 3: // leave
			for _, c := range colls {
				_ = c.Leave(m, "")
			}
		default: // join or merge-update
			nAttrs, ok := next()
			if !ok {
				return
			}
			attrs := make([]attr.Pair, 0, nAttrs%4+1)
			for a := byte(0); a < nAttrs%4+1; a++ {
				kb, ok1 := next()
				vb, ok2 := next()
				if !ok1 || !ok2 {
					break
				}
				attrs = append(attrs, attr.Pair{Name: fuzzKeys[int(kb)%len(fuzzKeys)], Value: fuzzValue(vb)})
			}
			for _, c := range colls {
				_ = c.Join(m, attrs, "")
			}
		}
	}
}

// FuzzQueryIndexEquivalence is the differential guard on the PR 3 index
// pruning soundness argument: for arbitrary populations and queries,
// the indexed path must return exactly the records a full scan returns.
func FuzzQueryIndexEquivalence(f *testing.F) {
	seedData := [][]byte{
		{0, 2, 0, 10, 4, 17},
		{1, 3, 0, 0, 1, 33, 2, 64, 3, 5, 1, 4, 100, 7, 2, 6, 8},
		{9, 1, 2, 3, 13, 2, 0, 40, 5, 91, 21, 1, 3, 77, 11, 3},
	}
	seedQueries := []string{
		`$host_arch == "x86"`,
		`$host_zone == "z1" and $host_load < 0.5`,
		`$host_alive == true and ($host_arch == "mips" or $host_cpus > 2)`,
		`defined($host_arch)`,
		`$host_arch != "x86"`,
		`$host_cpus == 3 and $host_zone >= "z1"`,
		`$host_os_name == "" or not ($host_load > 0)`,
	}
	for i, d := range seedData {
		for _, q := range seedQueries {
			_ = i
			f.Add(d, q)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, src string) {
		rt := orb.NewRuntime("uva")
		indexed := New(rt, nil) // DefaultIndexedKeys
		scan := New(rt, nil)
		scan.SetIndexedKeys() // empty key set: candidates() never prunes
		buildFromBytes(data, indexed, scan)

		gotRecs, gotErr := indexed.Query(src)
		wantRecs, wantErr := scan.Query(src)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error divergence: indexed=%v scan=%v (query %q)", gotErr, wantErr, src)
		}
		if gotErr != nil {
			return // both rejected the query; nothing to compare
		}
		if err := sameRecords(gotRecs, wantRecs); err != nil {
			t.Fatalf("indexed/scan divergence on %q over %v: %v", src, data, err)
		}
	})
}

// sameRecords compares two result sets up to order.
func sameRecords(a, b []Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("result sizes %d vs %d", len(a), len(b))
	}
	byMember := func(rs []Record) {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Member.Less(rs[j].Member) })
	}
	byMember(a)
	byMember(b)
	for i := range a {
		if a[i].Member != b[i].Member {
			return fmt.Errorf("member %d: %v vs %v", i, a[i].Member, b[i].Member)
		}
		am, bm := attr.FromPairs(a[i].Attrs), attr.FromPairs(b[i].Attrs)
		if len(am) != len(bm) {
			return fmt.Errorf("%v: attr counts %d vs %d", a[i].Member, len(am), len(bm))
		}
		for k, v := range am {
			if w, ok := bm[k]; !ok || !v.Equal(w) {
				return fmt.Errorf("%v: attr %q %v vs %v", a[i].Member, k, v, w)
			}
		}
	}
	return nil
}
