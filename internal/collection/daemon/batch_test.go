package daemon

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/loid"
	"legion/internal/monitor"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
)

// fakeRes is a scripted resource: it answers get_attributes with
// whatever the test last set, so the oracle knows exactly which
// snapshot every sweep pulled.
type fakeRes struct {
	*orb.ServiceObject
	mu    sync.Mutex
	attrs []attr.Pair
}

func newFakeRes(rt *orb.Runtime, i int) *fakeRes {
	f := &fakeRes{ServiceObject: orb.NewServiceObject(loid.LOID{Domain: "uva", Class: "Fake", Instance: uint64(i + 1)})}
	f.set(0)
	f.Handle(proto.MethodGetAttributes, func(_ context.Context, _ any) (any, error) {
		f.mu.Lock()
		defer f.mu.Unlock()
		return proto.AttributesReply{Attrs: append([]attr.Pair(nil), f.attrs...)}, nil
	})
	rt.Register(f)
	return f
}

func (f *fakeRes) set(version int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attrs = []attr.Pair{
		{Name: "host_arch", Value: attr.String("x86")},
		{Name: "version", Value: attr.Int(int64(version))},
	}
}

// downSet is a race-safe resource→down map consulted by one fault
// injector installed before any sweep (SetFaultInjector itself must not
// race in-flight calls).
type downSet struct {
	mu   sync.Mutex
	down map[loid.LOID]bool
}

func (ds *downSet) set(res loid.LOID, down bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.down[res] = down
}

func (ds *downSet) get(res loid.LOID) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.down[res]
}

// TestBatchingProperty is the satellite property test: after an
// arbitrary interleaving of sweeps (updates + down-flags) with
// concurrent flushes, each member's shard state must equal the serial
// application of that member's updates in pull order — no lost writes,
// no reordered writes, and a down-flag racing a buffered update never
// resurrects a member that was never deposited.
func TestBatchingProperty(t *testing.T) {
	for _, tc := range []struct {
		seed        int64
		batchSize   int
		parallelism int
	}{
		{seed: 1, batchSize: 4, parallelism: 8},
		{seed: 2, batchSize: 1, parallelism: 1}, // every enqueue flushes
		{seed: 3, batchSize: 1 << 20, parallelism: 4},
		{seed: 4, batchSize: 7, parallelism: 2},
	} {
		t.Run(fmt.Sprintf("seed%d_batch%d_par%d", tc.seed, tc.batchSize, tc.parallelism), func(t *testing.T) {
			rt := orb.NewRuntime("uva")
			c := collection.New(rt, nil)
			const nRes = 12
			rng := rand.New(rand.NewSource(tc.seed))

			res := make([]*fakeRes, nRes)
			ds := &downSet{down: make(map[loid.LOID]bool)}
			for i := range res {
				res[i] = newFakeRes(rt, i)
				if i >= nRes-2 {
					ds.set(res[i].LOID(), true) // born dead: must never appear
				}
			}
			rt.SetFaultInjector(func(target loid.LOID, _ string) error {
				if ds.get(target) {
					return orb.ErrInjectedFault
				}
				return nil
			})

			d := New(rt, Config{
				Interval:   time.Hour, // sweeps driven manually
				Credential: "cred",
				Retry:      resilient.Policy{MaxAttempts: 1},
				// The oracle models the daemon, not the breakers: an open
				// breaker would keep a revived resource failing fast and
				// diverge the model, so breakers effectively never open.
				Breaker:       resilient.BreakerConfig{FailureThreshold: 1 << 30},
				Liveness:      monitor.NewLiveness(time.Hour, 1),
				DownAfter:     1,
				Parallelism:   tc.parallelism,
				BatchInterval: time.Hour, // flushes driven manually + by size
				BatchSize:     tc.batchSize,
			})
			for _, f := range res {
				d.Watch(f.LOID())
			}
			d.PushInto(c.LOID())

			// A concurrent flusher racing the sweeps' enqueues.
			stopFlush := make(chan struct{})
			var flushWG sync.WaitGroup
			flushWG.Add(1)
			go func() {
				defer flushWG.Done()
				for {
					select {
					case <-stopFlush:
						return
					default:
						d.FlushAll(context.Background())
						time.Sleep(time.Duration(100+tc.seed*37) * time.Microsecond)
					}
				}
			}()

			// Oracle: per member, the serial application of its pulled
			// snapshots in sweep order, with the daemon's flag semantics.
			type model struct {
				attrs   map[string]attr.Value
				present bool
				flagged bool
			}
			models := make([]model, nRes)
			version := make([]int, nRes)

			const rounds = 60
			ctx := context.Background()
			for round := 0; round < rounds; round++ {
				// Mutate some resources and flip some liveness states.
				for i := 0; i < nRes; i++ {
					if rng.Intn(3) == 0 {
						version[i]++
						res[i].set(version[i])
					}
					if rng.Intn(8) == 0 {
						ds.set(res[i].LOID(), !ds.get(res[i].LOID()))
					}
				}
				d.Sweep(ctx)
				// Mirror what this sweep must have enqueued per member. A
				// sweep is one snapshot per live resource; updates to the
				// fake after Sweep returned can't have been seen.
				for i := 0; i < nRes; i++ {
					m := &models[i]
					if !ds.get(res[i].LOID()) {
						if m.attrs == nil {
							m.attrs = make(map[string]attr.Value)
						}
						m.attrs["host_arch"] = attr.String("x86")
						m.attrs["version"] = attr.Int(int64(version[i]))
						m.attrs[AttrAlive] = attr.Bool(true)
						m.attrs[AttrState] = attr.String(monitor.LivenessUp.String())
						m.present = true
						m.flagged = false
					} else if !m.flagged {
						// First failing sweep: flag once, UpdateOnly — a
						// member never deposited stays absent.
						m.flagged = true
						if m.present {
							m.attrs[AttrAlive] = attr.Bool(false)
							m.attrs[AttrState] = attr.String(monitor.LivenessDown.String())
						}
					}
				}
			}
			close(stopFlush)
			flushWG.Wait()
			d.Stop() // flush-on-shutdown drains whatever is still buffered

			recs, err := c.Query(`defined($host_arch)`)
			if err != nil {
				t.Fatal(err)
			}
			byMember := make(map[loid.LOID]map[string]attr.Value, len(recs))
			for _, r := range recs {
				byMember[r.Member] = attr.FromPairs(r.Attrs)
			}
			for i := 0; i < nRes; i++ {
				m := models[i]
				got, ok := byMember[res[i].LOID()]
				if !m.present {
					if ok {
						t.Errorf("res %d: never-alive member resurrected by a flag: %v", i, got)
					}
					continue
				}
				if !ok {
					t.Errorf("res %d: deposited member missing from shard", i)
					continue
				}
				for k, want := range m.attrs {
					if gv, ok := got[k]; !ok || !gv.Equal(want) {
						t.Errorf("res %d attr %q = %v, want %v", i, k, gv, want)
					}
				}
				delete(byMember, res[i].LOID())
			}
			if len(byMember) != 0 {
				t.Errorf("unexpected extra members: %v", byMember)
			}
		})
	}
}

// TestBatchingCutsPushCalls pins the acceptance criterion: the same
// sweep workload must cost ≥ 4× fewer Collection-bound ORB calls with
// batching on.
func TestBatchingCutsPushCalls(t *testing.T) {
	run := func(batch bool) int64 {
		rt := orb.NewRuntime("uva")
		c := collection.New(rt, nil)
		cfg := Config{Interval: time.Hour, Credential: "cred"}
		if batch {
			cfg.BatchInterval = time.Hour
			cfg.BatchSize = 1 << 20 // flush only on Stop
		}
		d := New(rt, cfg)
		for i := 0; i < 16; i++ {
			d.Watch(newFakeRes(rt, i).LOID())
		}
		d.PushInto(c.LOID())
		for s := 0; s < 5; s++ {
			d.Sweep(context.Background())
		}
		d.Stop()
		if c.Size() != 16 {
			t.Fatalf("collection size = %d, want 16 (batch=%v)", c.Size(), batch)
		}
		return d.PushCalls()
	}
	direct := run(false)
	batched := run(true)
	if direct != 16*5 {
		t.Fatalf("direct push calls = %d, want 80", direct)
	}
	if batched*4 > direct {
		t.Fatalf("batched push calls = %d, not ≥4× below %d", batched, direct)
	}
}

// TestBatchFlushRetriesAfterCollectionRecovers: a flush against an
// unreachable Collection re-queues its entries in order and the next
// flush delivers them.
func TestBatchFlushRetriesAfterCollectionRecovers(t *testing.T) {
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	f := newFakeRes(rt, 0)
	ds := &downSet{down: make(map[loid.LOID]bool)}
	rt.SetFaultInjector(func(target loid.LOID, _ string) error {
		if ds.get(target) {
			return orb.ErrInjectedFault
		}
		return nil
	})
	d := New(rt, Config{
		Interval: time.Hour, Credential: "cred",
		Retry:         resilient.Policy{MaxAttempts: 1},
		BatchInterval: time.Hour, BatchSize: 1 << 20,
	})
	d.Watch(f.LOID())
	d.PushInto(c.LOID())

	d.Sweep(context.Background())
	ds.set(c.LOID(), true) // Collection unreachable: flush must re-queue
	d.Flush(context.Background(), c.LOID())
	if c.Size() != 0 {
		t.Fatalf("entries landed through a dead Collection")
	}
	_, errs := d.Stats()
	if errs == 0 {
		t.Fatal("failed flush not counted")
	}
	ds.set(c.LOID(), false)
	d.Flush(context.Background(), c.LOID())
	if c.Size() != 1 {
		t.Fatalf("re-queued entries lost: size = %d", c.Size())
	}
	recs, _ := c.Query(`$version == 0`)
	if len(recs) != 1 || recs[0].Member != f.LOID() {
		t.Fatalf("recovered record: %+v", recs)
	}
}
