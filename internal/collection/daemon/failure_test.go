package daemon

import (
	"context"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/loid"
	"legion/internal/monitor"
	"legion/internal/orb"
	"legion/internal/resilient"
)

// aliveFlag reads the daemon's liveness flag off a member's record.
func aliveFlag(t *testing.T, recs []collection.Record, member loid.LOID) (alive bool, state string) {
	t.Helper()
	for _, r := range recs {
		if r.Member != member {
			continue
		}
		m := attr.FromPairs(r.Attrs)
		a, okA := m[AttrAlive]
		s, okS := m[AttrState]
		if !okA || !okS {
			t.Fatalf("record for %v lacks liveness attrs: %+v", member, r.Attrs)
		}
		return a.BoolVal(), s.Str()
	}
	t.Fatalf("no record for %v", member)
	return false, ""
}

// TestUnreachableHostFlaggedDownThenRecovers drives the failure
// detector end to end: probes fail, the host crosses the down threshold,
// its Collection record is flagged down in place (stale attributes
// preserved), and a recovery flips it back to alive.
func TestUnreachableHostFlaggedDownThenRecovers(t *testing.T) {
	rt, c, h, _ := setup(t)
	// Single-attempt probes so each sweep is exactly one failure and the
	// test controls the count.
	d := New(rt, Config{
		Interval:   time.Hour, // sweeps driven manually
		Credential: "cred",
		Retry:      resilient.Policy{MaxAttempts: 1},
		DownAfter:  2,
	})
	d.Watch(h.LOID())
	d.PushInto(c.LOID())
	ctx := context.Background()

	if ok := d.Sweep(ctx); ok != 1 {
		t.Fatalf("healthy sweep deposits = %d", ok)
	}
	recs, _ := c.Query(`defined($host_arch)`)
	if alive, state := aliveFlag(t, recs, h.LOID()); !alive || state != "up" {
		t.Fatalf("healthy record flagged alive=%v state=%q", alive, state)
	}

	// The host stops answering (crash/partition): probes see transport
	// faults, but calls to the Collection itself must keep working.
	rt.SetFaultInjector(func(target loid.LOID, method string) error {
		if target == h.LOID() {
			return orb.ErrInjectedFault
		}
		return nil
	})

	d.Sweep(ctx) // failure 1 of 2: below threshold, record untouched
	recs, _ = c.Query(`defined($host_arch)`)
	if alive, _ := aliveFlag(t, recs, h.LOID()); !alive {
		t.Fatal("record flagged down before reaching the threshold")
	}
	d.Sweep(ctx) // failure 2 of 2: crosses threshold, record flagged
	if st := d.Liveness().State(h.LOID()); st != monitor.LivenessDown {
		t.Fatalf("liveness state = %v, want down", st)
	}
	recs, _ = c.Query(`defined($host_arch)`)
	if alive, state := aliveFlag(t, recs, h.LOID()); alive || state != "down" {
		t.Fatalf("dead record flagged alive=%v state=%q", alive, state)
	}
	// Stale-but-flagged: the last known attributes are still served.
	if _, ok := attr.FromPairs(recs[0].Attrs)["host_arch"]; !ok {
		t.Fatal("stale attributes were dropped from the flagged record")
	}

	// Recovery: the next successful sweep restores the alive flag.
	rt.SetFaultInjector(nil)
	if ok := d.Sweep(ctx); ok != 1 {
		t.Fatalf("recovery sweep deposits = %d", ok)
	}
	if st := d.Liveness().State(h.LOID()); st != monitor.LivenessUp {
		t.Fatalf("liveness state after recovery = %v, want up", st)
	}
	recs, _ = c.Query(`defined($host_arch)`)
	if alive, state := aliveFlag(t, recs, h.LOID()); !alive || state != "up" {
		t.Fatalf("recovered record flagged alive=%v state=%q", alive, state)
	}
}

// TestFailedProbeRetriesWithinSweep verifies a single blip is absorbed by
// the per-probe retry (default 2 attempts) without marking the host.
func TestFailedProbeRetriesWithinSweep(t *testing.T) {
	rt, c, h, _ := setup(t)
	d := New(rt, Config{Interval: time.Hour, Credential: "cred",
		Retry: resilient.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	d.Watch(h.LOID())
	d.PushInto(c.LOID())

	failures := 0
	rt.SetFaultInjector(func(target loid.LOID, method string) error {
		if target == h.LOID() && failures == 0 {
			failures++
			return orb.ErrInjectedFault
		}
		return nil
	})
	if ok := d.Sweep(context.Background()); ok != 1 {
		t.Fatalf("sweep with one blip deposits = %d", ok)
	}
	if st := d.Liveness().State(h.LOID()); st != monitor.LivenessUp {
		t.Fatalf("liveness after absorbed blip = %v, want up", st)
	}
	if _, errs := d.Stats(); errs != 0 {
		t.Fatalf("errors = %d, want 0 (blip absorbed by retry)", errs)
	}
}

// TestPermanentProbeErrorStillCountsAsFailure: a resource that answers
// with a permanent refusal-class error is still failing its probes.
func TestPermanentProbeErrorStillCountsAsFailure(t *testing.T) {
	rt, c, h, _ := setup(t)
	ghost := loid.LOID{Domain: "uva", Class: "Host", Instance: 999} // never registered
	d := New(rt, Config{Interval: time.Hour, Credential: "cred",
		Retry: resilient.Policy{MaxAttempts: 1}, DownAfter: 2})
	d.Watch(h.LOID(), ghost)
	d.PushInto(c.LOID())
	ctx := context.Background()

	d.Sweep(ctx)
	d.Sweep(ctx)
	if st := d.Liveness().State(ghost); st != monitor.LivenessDown {
		t.Fatalf("ghost state = %v, want down", st)
	}
	if st := d.Liveness().State(h.LOID()); st != monitor.LivenessUp {
		t.Fatalf("real host state = %v, want up", st)
	}
	// The ghost never joined, so there is no record to flag — and no
	// error from trying; the real host's record is unaffected.
	if c.Size() != 1 {
		t.Fatalf("collection size = %d, want 1 (just the real host)", c.Size())
	}
}
