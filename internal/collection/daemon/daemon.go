// Package daemon implements the Data Collection Daemon.
//
// The paper (§3.1, footnote 4): "We are implementing an intermediate
// agent, the Data Collection Daemon, which pulls data from Hosts and
// pushes it into Collections." The daemon periodically invokes
// get_attributes on a set of resources and UpdateCollectionEntry (or
// JoinCollection for resources not yet members) on a set of Collections —
// the pull half of the Collection population model, complementing the
// Hosts' own push path.
package daemon

import (
	"context"
	"sync"
	"time"

	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
)

// Config parameterizes a Daemon.
type Config struct {
	// Interval between pull sweeps.
	Interval time.Duration
	// Credential presented with Collection updates.
	Credential string
	// CallTimeout bounds each per-resource call; zero means 10 seconds.
	CallTimeout time.Duration
}

// Daemon pulls attribute snapshots from resources and pushes them into
// Collections.
type Daemon struct {
	rt  *orb.Runtime
	cfg Config

	mu          sync.Mutex
	resources   []loid.LOID
	collections []loid.LOID
	joined      map[loid.LOID]bool
	stop        chan struct{}
	stopped     bool
	sweeps      int64
	errors      int64
}

// New creates a Daemon using rt for communication.
func New(rt *orb.Runtime, cfg Config) *Daemon {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	return &Daemon{
		rt:     rt,
		cfg:    cfg,
		joined: make(map[loid.LOID]bool),
		stop:   make(chan struct{}),
	}
}

// Watch adds resources to pull from.
func (d *Daemon) Watch(resources ...loid.LOID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resources = append(d.resources, resources...)
}

// PushInto adds Collections to push into.
func (d *Daemon) PushInto(collections ...loid.LOID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.collections = append(d.collections, collections...)
}

// Sweep performs one pull-and-push pass synchronously and reports how
// many (resource, collection) deposits succeeded.
func (d *Daemon) Sweep(ctx context.Context) int {
	d.mu.Lock()
	resources := append([]loid.LOID(nil), d.resources...)
	collections := append([]loid.LOID(nil), d.collections...)
	d.sweeps++
	d.mu.Unlock()

	ok := 0
	for _, res := range resources {
		cctx, cancel := context.WithTimeout(ctx, d.cfg.CallTimeout)
		reply, err := d.rt.Call(cctx, res, proto.MethodGetAttributes, nil)
		cancel()
		if err != nil {
			d.mu.Lock()
			d.errors++
			d.mu.Unlock()
			continue // a dead resource must not stall the sweep
		}
		attrs, isAttrs := reply.(proto.AttributesReply)
		if !isAttrs {
			d.mu.Lock()
			d.errors++
			d.mu.Unlock()
			continue
		}
		for _, coll := range collections {
			if d.deposit(ctx, coll, res, attrs) {
				ok++
			}
		}
	}
	return ok
}

// deposit pushes one snapshot, joining the member first if needed.
func (d *Daemon) deposit(ctx context.Context, coll, res loid.LOID, attrs proto.AttributesReply) bool {
	cctx, cancel := context.WithTimeout(ctx, d.cfg.CallTimeout)
	defer cancel()
	key := loid.LOID{Domain: coll.Domain, Class: coll.Class + "/" + res.String(), Instance: coll.Instance}
	d.mu.Lock()
	alreadyJoined := d.joined[key]
	d.mu.Unlock()
	if !alreadyJoined {
		_, err := d.rt.Call(cctx, coll, proto.MethodJoinCollection,
			proto.JoinArgs{Joiner: res, Attrs: attrs.Attrs, Credential: d.cfg.Credential})
		if err == nil {
			d.mu.Lock()
			d.joined[key] = true
			d.mu.Unlock()
			return true
		}
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return false
	}
	_, err := d.rt.Call(cctx, coll, proto.MethodUpdateCollectionEntry,
		proto.UpdateArgs{Member: res, Attrs: attrs.Attrs, Credential: d.cfg.Credential})
	if err != nil {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return false
	}
	return true
}

// Start begins periodic sweeps; Stop ends them.
func (d *Daemon) Start() {
	go func() {
		t := time.NewTicker(d.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.Sweep(context.Background())
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop halts periodic sweeps. Idempotent.
func (d *Daemon) Stop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.stopped {
		d.stopped = true
		close(d.stop)
	}
}

// Stats reports sweep and error counts.
func (d *Daemon) Stats() (sweeps, errors int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sweeps, d.errors
}
