// Package daemon implements the Data Collection Daemon.
//
// The paper (§3.1, footnote 4): "We are implementing an intermediate
// agent, the Data Collection Daemon, which pulls data from Hosts and
// pushes it into Collections." The daemon periodically invokes
// get_attributes on a set of resources and UpdateCollectionEntry (or
// JoinCollection for resources not yet members) on a set of Collections —
// the pull half of the Collection population model, complementing the
// Hosts' own push path.
//
// The pull loop is where resource failure becomes visible first, so the
// daemon doubles as the failure detector: each probe runs under a retry
// policy and a per-resource circuit breaker, successes heartbeat a
// monitor.Liveness tracker, and an unreachable resource's Collection
// records are not deleted but flagged (host_alive=false, host_state)
// so schedulers can skip them while operators still see the last known
// attributes — stale-but-flagged, never silently missing.
package daemon

import (
	"context"
	"sync"
	"time"

	"legion/internal/attr"
	"legion/internal/fanout"
	"legion/internal/loid"
	"legion/internal/monitor"
	"legion/internal/nws"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/telemetry"
)

// Liveness attribute names deposited alongside pulled attributes.
const (
	// AttrAlive is false on records whose resource stopped answering.
	AttrAlive = "host_alive"
	// AttrState carries the monitor.LivenessState string.
	AttrState = "host_state"
	// AttrLoadHistory is the rolling window of recent host_load samples
	// the daemon accumulates across sweeps (oldest first) — the series
	// nws.InjectForecast's forecast_load() consumes.
	AttrLoadHistory = "host_load_history"
	// AttrLoad is the instantaneous load attribute the history samples.
	AttrLoad = "host_load"
)

// Config parameterizes a Daemon.
type Config struct {
	// Interval between pull sweeps.
	Interval time.Duration
	// Credential presented with Collection updates.
	Credential string
	// CallTimeout bounds each per-resource call (the whole retry budget
	// for that probe); zero means 10 seconds.
	CallTimeout time.Duration
	// Retry shapes per-probe retries; the zero value means 2 attempts
	// (one quick retry absorbs a blip without stretching the sweep).
	Retry resilient.Policy
	// Breaker shapes the per-resource circuit breaker.
	Breaker resilient.BreakerConfig
	// Breakers, when non-nil, is an existing breaker pool to share (e.g.
	// the Metasystem's domain-wide set); it overrides Breaker.
	Breakers *resilient.BreakerSet
	// Liveness, when non-nil, is the tracker to feed; nil makes the
	// daemon create its own (read it back via Liveness()).
	Liveness *monitor.Liveness
	// DownAfter consecutive probe failures flag the resource's records;
	// zero means 2.
	DownAfter int
	// Parallelism bounds how many resources are probed concurrently in
	// one sweep, so a sweep's wall time is dominated by the slowest
	// probe, not the sum of all probe timeouts. Zero means 8; 1 probes
	// serially.
	Parallelism int
	// BatchInterval > 0 switches the push half to coalesced batches:
	// deposits and down-flags are buffered per Collection and flushed as
	// one UpdateCollectionBatch call every BatchInterval (and whenever a
	// buffer reaches BatchSize, and on Stop). The trade-off is the
	// paper's §4 pull/push staleness argument made explicit: Collection
	// data lags by up to one interval in exchange for one ORB
	// round-trip per Collection per flush instead of one per resource.
	BatchInterval time.Duration
	// BatchSize triggers an early flush when a Collection's buffer holds
	// this many entries; zero means 256. Buffers are capped at 16× this
	// to bound memory while a Collection is unreachable (oldest entries
	// are dropped and counted as errors).
	BatchSize int
	// HistoryLen > 0 makes each sweep record the resource's host_load
	// into a rolling per-resource window of that many samples and
	// deposit the window as the host_load_history attribute — the pull
	// loop doubling as the NWS measurement sensor, so forecast_load()
	// queries and predictive rebalancing have a series to predict from.
	// Zero disables (no history attribute is deposited).
	HistoryLen int
}

// Daemon pulls attribute snapshots from resources and pushes them into
// Collections.
type Daemon struct {
	rt   *orb.Runtime
	cfg  Config
	call *resilient.Caller
	live *monitor.Liveness

	mu          sync.Mutex
	resources   []loid.LOID
	collections []loid.LOID
	loadHist    map[loid.LOID][]float64 // rolling host_load windows (HistoryLen > 0)
	joined      map[loid.LOID]bool
	flagged     map[loid.LOID]bool // resources currently marked down
	batches     map[loid.LOID]*collBatch
	stop        chan struct{}
	stopped     bool
	sweeps      int64
	errors      int64
	sheds       int64 // batch entries dropped by the overflow cap
	pushCalls   int64 // ORB calls spent pushing into Collections

	// shedCounter mirrors sheds into the runtime's registry
	// (legion_daemon_update_sheds_total) so overflow drops are visible
	// on /metrics, distinct from transport errors.
	shedCounter *telemetry.Counter
}

// collBatch buffers pending entries for one Collection. mu guards
// pending; sendMu is held across the swap-and-send of a flush so
// concurrent flushes serialize and per-member entry order on the wire
// matches enqueue order (a failed send re-queues its entries at the
// front under mu before sendMu is released, so no later flush can slip
// its entries ahead of them).
type collBatch struct {
	mu      sync.Mutex
	sendMu  sync.Mutex
	pending []proto.BatchEntry
}

// New creates a Daemon using rt for communication.
func New(rt *orb.Runtime, cfg Config) *Daemon {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 2
	}
	if cfg.Retry.Budget <= 0 {
		cfg.Retry.Budget = cfg.CallTimeout
	}
	if cfg.DownAfter <= 0 {
		cfg.DownAfter = 2
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 8
	}
	if cfg.Liveness == nil {
		cfg.Liveness = monitor.NewLiveness(3*cfg.Interval, cfg.DownAfter)
		cfg.Liveness.SetClock(rt.Clock().Now)
		// A tracker minted here is observed by nothing else, so the
		// daemon wires the flap counters itself; a caller-supplied
		// tracker keeps whatever observer the caller installed.
		wireLivenessCounters(cfg.Liveness, rt.Metrics())
	}
	if cfg.Retry.Clock == nil {
		cfg.Retry.Clock = rt.Clock()
	}
	call := resilient.NewCaller(rt, cfg.Retry, cfg.Breaker)
	if cfg.Breakers != nil {
		call = resilient.NewCallerWith(rt, cfg.Retry, cfg.Breakers)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	return &Daemon{
		rt:          rt,
		cfg:         cfg,
		call:        call,
		live:        cfg.Liveness,
		loadHist:    make(map[loid.LOID][]float64),
		joined:      make(map[loid.LOID]bool),
		flagged:     make(map[loid.LOID]bool),
		batches:     make(map[loid.LOID]*collBatch),
		stop:        make(chan struct{}),
		shedCounter: rt.Metrics().Counter("legion_daemon_update_sheds_total"),
	}
}

// batching reports whether the coalesced push path is enabled.
func (d *Daemon) batching() bool { return d.cfg.BatchInterval > 0 }

func (d *Daemon) batchFor(coll loid.LOID) *collBatch {
	d.mu.Lock()
	defer d.mu.Unlock()
	cb := d.batches[coll]
	if cb == nil {
		cb = &collBatch{}
		d.batches[coll] = cb
	}
	return cb
}

// enqueue buffers one entry for coll and flushes if the buffer filled.
func (d *Daemon) enqueue(ctx context.Context, coll loid.LOID, e proto.BatchEntry) {
	cb := d.batchFor(coll)
	cb.mu.Lock()
	cb.pending = append(cb.pending, e)
	// Bound memory while coll is unreachable: shed the oldest entries
	// (their members' later entries, still queued, carry newer state).
	// Sheds are counted apart from transport errors — a rising shed
	// count means updates are being lost to backpressure, not that the
	// Collection is failing calls.
	if max := 16 * d.cfg.BatchSize; len(cb.pending) > max {
		over := len(cb.pending) - max
		cb.pending = append(cb.pending[:0:0], cb.pending[over:]...)
		d.shedCounter.Add(int64(over))
		d.mu.Lock()
		d.sheds += int64(over)
		d.mu.Unlock()
	}
	full := len(cb.pending) >= d.cfg.BatchSize
	cb.mu.Unlock()
	if full {
		d.flushOne(ctx, coll, cb)
	}
}

// Flush pushes coll's buffered entries now, as one batch call.
func (d *Daemon) Flush(ctx context.Context, coll loid.LOID) {
	d.flushOne(ctx, coll, d.batchFor(coll))
}

// FlushAll flushes every Collection's buffer.
func (d *Daemon) FlushAll(ctx context.Context) {
	d.mu.Lock()
	colls := make([]loid.LOID, 0, len(d.batches))
	cbs := make([]*collBatch, 0, len(d.batches))
	for coll, cb := range d.batches {
		colls = append(colls, coll)
		cbs = append(cbs, cb)
	}
	d.mu.Unlock()
	for i := range colls {
		d.flushOne(ctx, colls[i], cbs[i])
	}
}

func (d *Daemon) flushOne(ctx context.Context, coll loid.LOID, cb *collBatch) {
	cb.sendMu.Lock()
	defer cb.sendMu.Unlock()
	cb.mu.Lock()
	entries := cb.pending
	cb.pending = nil
	cb.mu.Unlock()
	if len(entries) == 0 {
		return
	}
	cctx, cancel := d.rt.Clock().WithTimeout(ctx, d.cfg.CallTimeout)
	defer cancel()
	d.mu.Lock()
	d.pushCalls++
	d.mu.Unlock()
	_, err := d.call.Call(cctx, coll, proto.MethodUpdateCollectionBatch,
		proto.BatchUpdateArgs{Entries: entries, Credential: d.cfg.Credential})
	if err == nil {
		return
	}
	// Re-queue at the front (sendMu is still held, so nothing sent in
	// between) and retry on the next flush.
	d.mu.Lock()
	d.errors++
	d.mu.Unlock()
	cb.mu.Lock()
	cb.pending = append(entries, cb.pending...)
	cb.mu.Unlock()
}

// wireLivenessCounters counts liveness transitions into reg: one
// counter per destination state, so up/down flapping is visible as
// paired `to="up"` / `to="down"` increments.
func wireLivenessCounters(live *monitor.Liveness, reg *telemetry.Registry) {
	toUp := reg.Counter("legion_liveness_transitions_total", "to", "up")
	toDown := reg.Counter("legion_liveness_transitions_total", "to", "down")
	toStale := reg.Counter("legion_liveness_transitions_total", "to", "stale")
	live.OnTransition(func(_ loid.LOID, _, to monitor.LivenessState) {
		switch to {
		case monitor.LivenessUp:
			toUp.Inc()
		case monitor.LivenessDown:
			toDown.Inc()
		case monitor.LivenessStale:
			toStale.Inc()
		}
	})
}

// Liveness returns the tracker the daemon feeds.
func (d *Daemon) Liveness() *monitor.Liveness { return d.live }

// Breakers exposes the daemon's per-resource breaker states.
func (d *Daemon) Breakers() *resilient.BreakerSet { return d.call.Breakers() }

// Watch adds resources to pull from.
func (d *Daemon) Watch(resources ...loid.LOID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.resources = append(d.resources, resources...)
}

// PushInto adds Collections to push into.
func (d *Daemon) PushInto(collections ...loid.LOID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.collections = append(d.collections, collections...)
}

// Sweep performs one pull-and-push pass synchronously and reports how
// many (resource, collection) deposits succeeded. Unreachable resources
// do not stall the sweep: the probe fails inside its retry budget (or
// instantly once its breaker opens), the failure feeds the liveness
// tracker, and on crossing the down threshold the resource's records in
// every Collection are flagged down in place.
func (d *Daemon) Sweep(ctx context.Context) int {
	d.mu.Lock()
	resources := append([]loid.LOID(nil), d.resources...)
	collections := append([]loid.LOID(nil), d.collections...)
	d.sweeps++
	d.mu.Unlock()

	// Probe the resources concurrently: a sweep over a fleet with a few
	// dead hosts would otherwise serialize their full retry budgets. All
	// shared state touched here (errors, flagged, joined, the liveness
	// tracker) is internally locked; the per-resource deposit counts go
	// into per-index slots and are summed after the join.
	oks := make([]int, len(resources))
	fanout.Do(d.cfg.Parallelism, len(resources), func(ri int) {
		res := resources[ri]
		cctx, cancel := d.rt.Clock().WithTimeout(ctx, d.cfg.CallTimeout)
		reply, err := d.call.Call(cctx, res, proto.MethodGetAttributes, nil)
		cancel()
		attrs, isAttrs := reply.(proto.AttributesReply)
		if err != nil || !isAttrs {
			d.mu.Lock()
			d.errors++
			d.mu.Unlock()
			d.live.Fail(res)
			if d.live.State(res) == monitor.LivenessDown {
				d.flagDown(ctx, res, collections)
			}
			return
		}
		d.live.Beat(res)
		d.mu.Lock()
		d.flagged[res] = false // the deposit below re-marks alive=true
		d.mu.Unlock()
		attrs.Attrs = append(attrs.Attrs,
			attr.Pair{Name: AttrAlive, Value: attr.Bool(true)},
			attr.Pair{Name: AttrState, Value: attr.String(d.live.State(res).String())},
		)
		if hist, ok := d.recordLoad(res, attrs.Attrs); ok {
			attrs.Attrs = append(attrs.Attrs,
				attr.Pair{Name: AttrLoadHistory, Value: nws.HistoryAttr(hist)})
		}
		for _, coll := range collections {
			if d.deposit(ctx, coll, res, attrs) {
				oks[ri]++
			}
		}
	})
	ok := 0
	for _, n := range oks {
		ok += n
	}
	return ok
}

// recordLoad folds the snapshot's host_load sample into the resource's
// rolling window and returns a copy to deposit (shared batch buffers
// outlive the next sweep's in-place roll). Disabled, load-less, and
// non-numeric snapshots deposit nothing.
func (d *Daemon) recordLoad(res loid.LOID, attrs []attr.Pair) ([]float64, bool) {
	if d.cfg.HistoryLen <= 0 {
		return nil, false
	}
	load, ok := 0.0, false
	for _, p := range attrs {
		if p.Name == AttrLoad {
			load, ok = p.Value.AsFloat()
			break
		}
	}
	if !ok {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	h := append(d.loadHist[res], load)
	if len(h) > d.cfg.HistoryLen {
		h = append(h[:0:0], h[len(h)-d.cfg.HistoryLen:]...)
	}
	d.loadHist[res] = h
	return append([]float64(nil), h...), true
}

// flagDown marks a dead resource's records down in every Collection it
// has joined: Update merges, so the stale attributes survive alongside
// the flag for operators, while schedulers filter on host_alive.
func (d *Daemon) flagDown(ctx context.Context, res loid.LOID, collections []loid.LOID) {
	d.mu.Lock()
	already := d.flagged[res]
	d.flagged[res] = true
	d.mu.Unlock()
	if already {
		return // records already say down; no traffic per sweep
	}
	flag := []attr.Pair{
		{Name: AttrAlive, Value: attr.Bool(false)},
		{Name: AttrState, Value: attr.String(monitor.LivenessDown.String())},
	}
	if d.batching() {
		// UpdateOnly: if the member was never deposited (or was pruned),
		// the shard drops the flag instead of creating a ghost record.
		// A flush failure re-queues the entry, so no error-reset here.
		for _, coll := range collections {
			d.enqueue(ctx, coll, proto.BatchEntry{Member: res, Attrs: flag, UpdateOnly: true})
		}
		return
	}
	for _, coll := range collections {
		if !d.hasJoined(coll, res) {
			continue
		}
		cctx, cancel := d.rt.Clock().WithTimeout(ctx, d.cfg.CallTimeout)
		d.mu.Lock()
		d.pushCalls++
		d.mu.Unlock()
		_, err := d.call.Call(cctx, coll, proto.MethodUpdateCollectionEntry,
			proto.UpdateArgs{Member: res, Attrs: flag, Credential: d.cfg.Credential})
		cancel()
		if err != nil {
			d.mu.Lock()
			d.errors++
			// Retry the flagging next sweep.
			d.flagged[res] = false
			d.mu.Unlock()
		}
	}
}

func (d *Daemon) joinKey(coll, res loid.LOID) loid.LOID {
	return loid.LOID{Domain: coll.Domain, Class: coll.Class + "/" + res.String(), Instance: coll.Instance}
}

func (d *Daemon) hasJoined(coll, res loid.LOID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.joined[d.joinKey(coll, res)]
}

// deposit pushes one snapshot, joining the member first if needed. In
// batched mode it only buffers the entry — the server-side batch apply
// upserts, so no separate join round-trip (or joined bookkeeping) is
// needed.
func (d *Daemon) deposit(ctx context.Context, coll, res loid.LOID, attrs proto.AttributesReply) bool {
	if d.batching() {
		d.enqueue(ctx, coll, proto.BatchEntry{Member: res, Attrs: attrs.Attrs})
		return true
	}
	cctx, cancel := d.rt.Clock().WithTimeout(ctx, d.cfg.CallTimeout)
	defer cancel()
	key := d.joinKey(coll, res)
	d.mu.Lock()
	alreadyJoined := d.joined[key]
	d.pushCalls++
	d.mu.Unlock()
	if !alreadyJoined {
		_, err := d.call.Call(cctx, coll, proto.MethodJoinCollection,
			proto.JoinArgs{Joiner: res, Attrs: attrs.Attrs, Credential: d.cfg.Credential})
		if err == nil {
			d.mu.Lock()
			d.joined[key] = true
			d.mu.Unlock()
			return true
		}
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return false
	}
	_, err := d.call.Call(cctx, coll, proto.MethodUpdateCollectionEntry,
		proto.UpdateArgs{Member: res, Attrs: attrs.Attrs, Credential: d.cfg.Credential})
	if err != nil {
		d.mu.Lock()
		d.errors++
		d.mu.Unlock()
		return false
	}
	return true
}

// Start begins periodic sweeps (and, in batched mode, periodic
// flushes); Stop ends them.
func (d *Daemon) Start() {
	clock := d.rt.Clock()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-d.stop; cancel() }()
	clock.Go(func() {
		t := clock.NewTicker(d.cfg.Interval)
		defer t.Stop()
		for t.Wait(ctx) == nil {
			d.Sweep(context.Background())
		}
	})
	if d.batching() {
		clock.Go(func() {
			t := clock.NewTicker(d.cfg.BatchInterval)
			defer t.Stop()
			for t.Wait(ctx) == nil {
				d.FlushAll(context.Background())
			}
		})
	}
}

// Stop halts periodic sweeps and flushes any buffered entries so a
// shutdown never strands the last interval's updates. Idempotent.
func (d *Daemon) Stop() {
	d.mu.Lock()
	alreadyStopped := d.stopped
	if !d.stopped {
		d.stopped = true
		close(d.stop)
	}
	d.mu.Unlock()
	if !alreadyStopped && d.batching() {
		d.FlushAll(context.Background())
	}
}

// Stats reports sweep and error counts.
func (d *Daemon) Stats() (sweeps, errors int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sweeps, d.errors
}

// Sheds reports how many buffered batch entries were dropped by the
// overflow cap while a Collection was unreachable.
func (d *Daemon) Sheds() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sheds
}

// PushCalls reports how many ORB calls the daemon has spent pushing
// data into Collections — the quantity batching exists to cut.
func (d *Daemon) PushCalls() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pushCalls
}
