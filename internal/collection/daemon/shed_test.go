package daemon

import (
	"context"
	"testing"
	"time"

	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/telemetry"
)

// TestBatchOverflowShedsAreCounted overflows a Collection buffer while
// the Collection is unreachable and verifies the dropped entries are
// counted as sheds — on the Sheds() accessor and the
// legion_daemon_update_sheds_total counter — separately from transport
// errors, and that the buffer stays capped at 16×BatchSize.
func TestBatchOverflowShedsAreCounted(t *testing.T) {
	rt := orb.NewRuntime("uva")
	// Private registry so the counter assertion survives -count=N reruns.
	reg := telemetry.NewRegistry()
	rt.SetMetrics(reg)

	const batchSize = 2 // cap = 16×2 = 32 buffered entries
	d := New(rt, Config{
		Interval: time.Hour, Credential: "cred",
		Retry:         resilient.Policy{MaxAttempts: 1},
		BatchInterval: time.Hour,
		BatchSize:     batchSize,
	})
	// Never bound: every size-triggered flush fails and re-queues.
	deadColl := loid.LOID{Domain: "uva", Class: "Coll", Instance: 404}

	const total = 40
	for i := 0; i < total; i++ {
		d.enqueue(context.Background(), deadColl, proto.BatchEntry{
			Member: loid.LOID{Domain: "uva", Class: "M", Instance: uint64(i + 1)},
		})
	}

	cap := 16 * batchSize
	wantShed := int64(total - cap)
	if got := d.Sheds(); got != wantShed {
		t.Errorf("Sheds() = %d, want %d", got, wantShed)
	}
	if got := reg.CounterValue("legion_daemon_update_sheds_total"); got != wantShed {
		t.Errorf("legion_daemon_update_sheds_total = %d, want %d", got, wantShed)
	}

	cb := d.batchFor(deadColl)
	cb.mu.Lock()
	pending := len(cb.pending)
	oldest := cb.pending[0].Member.Instance
	cb.mu.Unlock()
	if pending != cap {
		t.Errorf("pending = %d, want capped at %d", pending, cap)
	}
	// Oldest entries were the ones shed.
	if want := uint64(total - cap + 1); oldest != want {
		t.Errorf("oldest surviving entry = instance %d, want %d", oldest, want)
	}

	// Sheds are not conflated with flush errors: errors counts only the
	// failed flush attempts.
	_, errs := d.Stats()
	if errs == 0 {
		t.Error("failed flushes not counted as errors")
	}
	if errs >= wantShed+int64(total) {
		t.Errorf("errors = %d, looks like sheds leaked into the error count", errs)
	}
}
