package daemon

import (
	"context"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/nws"
	"legion/internal/orb"
	"legion/internal/vault"
	"legion/internal/vclock"
)

func setup(t *testing.T) (*orb.Runtime, *collection.Collection, *host.Host, *Daemon) {
	t.Helper()
	rt := orb.NewRuntime("uva")
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	c := collection.New(rt, nil)
	d := New(rt, Config{Interval: 5 * time.Millisecond, Credential: "cred"})
	d.Watch(h.LOID())
	d.PushInto(c.LOID())
	return rt, c, h, d
}

func TestSweepJoinsThenUpdates(t *testing.T) {
	_, c, h, d := setup(t)
	ctx := context.Background()

	if ok := d.Sweep(ctx); ok != 1 {
		t.Fatalf("first sweep deposits = %d", ok)
	}
	if c.Size() != 1 {
		t.Fatalf("collection size = %d", c.Size())
	}
	recs, _ := c.Query(`$host_os_name == "Linux"`)
	if len(recs) != 1 || recs[0].Member != h.LOID() {
		t.Fatalf("pulled record: %+v", recs)
	}

	// Host state changes; second sweep updates the existing record.
	h.SetExternalLoad(0.8)
	h.Reassess(ctx)
	if ok := d.Sweep(ctx); ok != 1 {
		t.Fatalf("second sweep deposits = %d", ok)
	}
	recs, _ = c.Query(`$host_load > 0.5`)
	if len(recs) != 1 {
		t.Fatalf("updated record not visible: %+v", recs)
	}
	sweeps, errs := d.Stats()
	if sweeps != 2 || errs != 0 {
		t.Errorf("stats = %d sweeps %d errors", sweeps, errs)
	}
}

func TestSweepToleratesDeadResource(t *testing.T) {
	rt, c, h, d := setup(t)
	ghost := loid.LOID{Domain: "uva", Class: "Host", Instance: 999}
	d.Watch(ghost)
	if ok := d.Sweep(context.Background()); ok != 1 {
		t.Fatalf("sweep deposits = %d (live host should still land)", ok)
	}
	_, errs := d.Stats()
	if errs != 1 {
		t.Errorf("errors = %d, want 1 (the ghost)", errs)
	}
	_ = rt
	_ = c
	_ = h
}

func TestSweepToleratesDeadCollection(t *testing.T) {
	rt, _, h, _ := setup(t)
	d2 := New(rt, Config{Interval: time.Second, CallTimeout: 50 * time.Millisecond})
	d2.Watch(h.LOID())
	d2.PushInto(loid.LOID{Domain: "uva", Class: "Collection", Instance: 999})
	if ok := d2.Sweep(context.Background()); ok != 0 {
		t.Fatalf("sweep deposits = %d", ok)
	}
	_, errs := d2.Stats()
	if errs != 1 {
		t.Errorf("errors = %d", errs)
	}
}

// TestPeriodicStartStop drives the periodic sweep on the virtual clock:
// one Advance past the interval deterministically completes exactly one
// sweep (the engine waits for quiescence), replacing the old
// poll-until-deposited loop that slept on the wall clock.
func TestPeriodicStartStop(t *testing.T) {
	vc := vclock.NewVirtual()
	rt := orb.NewRuntime("uva")
	rt.SetClock(vc)
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	c := collection.New(rt, nil)
	d := New(rt, Config{Interval: 5 * time.Millisecond, Credential: "cred"})
	d.Watch(h.LOID())
	d.PushInto(c.LOID())

	d.Start()
	vc.Advance(5 * time.Millisecond)
	if c.Size() == 0 {
		t.Fatal("periodic sweep never deposited")
	}
	sweeps, _ := d.Stats()
	if sweeps != 1 {
		t.Fatalf("sweeps = %d after one interval, want exactly 1", sweeps)
	}
	d.Stop()
	d.Stop() // idempotent
}

// TestBatchIntervalVirtual checks the batch flush fires on its own
// periodic timer: deposits buffered by a sweep stay out of the
// Collection until virtual time crosses BatchInterval.
func TestBatchIntervalVirtual(t *testing.T) {
	vc := vclock.NewVirtual()
	rt := orb.NewRuntime("uva")
	rt.SetClock(vc)
	c := collection.New(rt, nil)
	d := New(rt, Config{
		Interval: time.Hour, Credential: "cred",
		BatchInterval: 50 * time.Millisecond, BatchSize: 1 << 20,
	})
	for i := 0; i < 4; i++ {
		d.Watch(newFakeRes(rt, i).LOID())
	}
	d.PushInto(c.LOID())
	d.Start()

	d.Sweep(context.Background())
	if c.Size() != 0 {
		t.Fatalf("batched entries landed before the flush interval: size=%d", c.Size())
	}
	vc.Advance(50 * time.Millisecond)
	if c.Size() != 4 {
		t.Fatalf("flush tick deposited %d entries, want 4", c.Size())
	}
	d.Stop()
}

func TestMultipleCollections(t *testing.T) {
	rt, c1, h, d := setup(t)
	c2 := collection.New(rt, nil)
	d.PushInto(c2.LOID())
	if ok := d.Sweep(context.Background()); ok != 2 {
		t.Fatalf("deposits = %d, want 2", ok)
	}
	if c1.Size() != 1 || c2.Size() != 1 {
		t.Errorf("sizes = %d, %d", c1.Size(), c2.Size())
	}
	recs, _ := c2.Query("defined($host_arch)")
	if len(recs) != 1 {
		t.Errorf("c2 record: %+v", recs)
	}
	m := attr.FromPairs(recs[0].Attrs)
	if m["host_loid"].Str() != h.LOID().String() {
		t.Errorf("host_loid attr = %v", m["host_loid"])
	}
}

func TestSweepPublishesLoadHistory(t *testing.T) {
	rt := orb.NewRuntime("uva")
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	c := collection.New(rt, nil)
	d := New(rt, Config{Interval: 5 * time.Millisecond, HistoryLen: 3})
	d.Watch(h.LOID())
	d.PushInto(c.LOID())
	ctx := context.Background()

	// Each sweep samples the host's current load into the rolling window.
	loads := []float64{0.2, 0.4, 0.6, 0.8}
	for _, l := range loads {
		h.SetExternalLoad(l)
		h.Reassess(ctx)
		if ok := d.Sweep(ctx); ok != 1 {
			t.Fatalf("sweep deposits = %d", ok)
		}
	}

	recs, err := c.Query(`defined($host_load_history)`)
	if err != nil || len(recs) != 1 {
		t.Fatalf("history record: %v %v", recs, err)
	}
	var histAttr attr.Value
	for _, p := range recs[0].Attrs {
		if p.Name == AttrLoadHistory {
			histAttr = p.Value
		}
	}
	hist, err := nws.HistoryFromAttr(histAttr)
	if err != nil {
		t.Fatal(err)
	}
	// Window length 3: the first sample rolled out, newest last.
	want := []float64{0.4, 0.6, 0.8}
	if len(hist) != len(want) {
		t.Fatalf("history = %v, want %v", hist, want)
	}
	for i := range want {
		if diff := hist[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("history = %v, want %v", hist, want)
		}
	}

	// The published series powers forecast_load() directly.
	nws.InjectForecast(c, nil)
	recs, err = c.Query(`forecast_load() > 0.3`)
	if err != nil || len(recs) != 1 {
		t.Errorf("forecast over published history: %v %v", recs, err)
	}
}
