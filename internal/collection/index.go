package collection

import (
	"strconv"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/query"
)

// DefaultIndexedKeys are the attribute keys a new Collection indexes:
// the low-cardinality equality/comparison keys the stock schedulers and
// the failure detector put in nearly every query. High-cardinality keys
// (host_load, timestamps) deliberately stay unindexed — their buckets
// would be as numerous as the records.
var DefaultIndexedKeys = []string{
	"host_alive",
	"host_state",
	"host_arch",
	"host_os_name",
	"host_os_type",
	"host_zone",
	"host_is_batch",
}

// attrIndex is an inverted index over a fixed set of attribute keys:
// key → canonical value text → set of members whose record carries
// exactly that value. It is maintained under the Collection write lock
// on every Join/Update/Leave/Prune. Bucket keys come from canonical,
// which yields identical text exactly when attr.Value.Equal holds, so
// an equality term lands in the same bucket as every record it matches.
type attrIndex struct {
	keys    map[string]bool
	buckets map[string]map[string]*indexBucket
}

type indexBucket struct {
	val     attr.Value
	members map[loid.LOID]struct{}
}

// canonical renders v so that two values print identically exactly when
// Equal holds. Numerics need care: Equal compares ints and floats
// through float64 (Int(1e6) equals Float(1e6)), but Value.String prints
// them differently ("1000000" vs "1e+06"), so both are formatted from
// their float64 image instead.
func canonical(v attr.Value) string {
	if f, ok := v.AsFloat(); ok {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return v.String()
}

func newAttrIndex(keys []string) *attrIndex {
	ix := &attrIndex{
		keys:    make(map[string]bool, len(keys)),
		buckets: make(map[string]map[string]*indexBucket),
	}
	for _, k := range keys {
		ix.keys[k] = true
	}
	return ix
}

func (ix *attrIndex) insert(member loid.LOID, r *record) {
	for k := range ix.keys {
		v, ok := r.attrs[k]
		if !ok {
			continue
		}
		bk := ix.buckets[k]
		if bk == nil {
			bk = make(map[string]*indexBucket)
			ix.buckets[k] = bk
		}
		cv := canonical(v)
		b := bk[cv]
		if b == nil {
			b = &indexBucket{val: v, members: make(map[loid.LOID]struct{})}
			bk[cv] = b
		}
		b.members[member] = struct{}{}
	}
}

func (ix *attrIndex) remove(member loid.LOID, r *record) {
	if r == nil {
		return
	}
	for k := range ix.keys {
		v, ok := r.attrs[k]
		if !ok {
			continue
		}
		bk := ix.buckets[k]
		if bk == nil {
			continue
		}
		cv := canonical(v)
		if b := bk[cv]; b != nil {
			delete(b.members, member)
			if len(b.members) == 0 {
				delete(bk, cv)
			}
		}
	}
}

// replace swaps member's index entries from the old record to its
// successor; either may be nil (fresh join / removal).
func (ix *attrIndex) replace(member loid.LOID, old, succ *record) {
	ix.remove(member, old)
	if succ != nil {
		ix.insert(member, succ)
	}
}

// candidates returns the smallest member set implied by the indexable
// conjuncts of a query, and whether any conjunct used an indexed key at
// all — when none did, the caller falls back to a full scan. The index
// only prunes: the full expression is still evaluated against every
// candidate. Soundness: a top-level conjunct that is false (or touches
// a missing attribute) falsifies the whole conjunction, so records
// outside the returned set cannot match.
//
// Callers must hold the Collection lock; the returned set is the live
// bucket for equality terms and must not be mutated or retained past
// the lock.
func (ix *attrIndex) candidates(terms []query.Term) (map[loid.LOID]struct{}, bool) {
	var best map[loid.LOID]struct{}
	found := false
	for _, t := range terms {
		if !ix.keys[t.Attr] {
			continue
		}
		var set map[loid.LOID]struct{}
		switch t.Op {
		case "==":
			if b := ix.buckets[t.Attr][canonical(t.Value)]; b != nil {
				set = b.members
			} else {
				set = map[loid.LOID]struct{}{} // no record carries the value
			}
		case "<", "<=", ">", ">=":
			set = map[loid.LOID]struct{}{}
			for _, b := range ix.buckets[t.Attr] {
				if res, cmp := query.CompareValues(b.val, t.Value, t.Op); cmp && res {
					for m := range b.members {
						set[m] = struct{}{}
					}
				}
			}
		default:
			// != is near-useless for pruning; leave it to evaluation.
			continue
		}
		if !found || len(set) < len(best) {
			best, found = set, true
		}
	}
	return best, found
}
