package collection

import (
	"context"
	"errors"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/telemetry"
)

func domainMember(domain string, i uint64) loid.LOID {
	return loid.LOID{Domain: domain, Class: "Host", Instance: i}
}

// newRouterFixture builds a runtime with nShards real shards plus a
// Router over them, reporting into a private registry.
func newRouterFixture(t *testing.T, nShards int, mutate func(cfg *RouterConfig)) (*orb.Runtime, []*Collection, *Router, *telemetry.Registry) {
	t.Helper()
	rt := orb.NewRuntime("uva")
	reg := telemetry.NewRegistry()
	rt.SetMetrics(reg)
	shards := make([]*Collection, nShards)
	loids := make([]loid.LOID, nShards)
	for i := range shards {
		shards[i] = New(rt, nil)
		loids[i] = shards[i].LOID()
	}
	cfg := RouterConfig{Shards: loids}
	if mutate != nil {
		mutate(&cfg)
	}
	return rt, shards, NewRouter(rt, cfg), reg
}

func TestRouterRoutesMutationsToOwningShard(t *testing.T) {
	_, shards, r, _ := newRouterFixture(t, 2, func(cfg *RouterConfig) {
		cfg.Route = RouteByDomain(map[string]int{"east": 0, "west": 1})
	})
	ctx := context.Background()
	east := domainMember("east", 1)
	west := domainMember("west", 1)
	if err := r.Join(ctx, east, hostAttrs("Linux", "2.2", 0.1), ""); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(ctx, west, hostAttrs("IRIX", "5.3", 0.9), ""); err != nil {
		t.Fatal(err)
	}
	if shards[0].Size() != 1 || shards[1].Size() != 1 {
		t.Fatalf("shard sizes = %d, %d; want 1, 1", shards[0].Size(), shards[1].Size())
	}
	// Update routes to the same shard the member joined.
	if err := r.Update(ctx, east, []attr.Pair{{Name: "host_load", Value: attr.Float(0.7)}}, ""); err != nil {
		t.Fatal(err)
	}
	recs, err := shards[0].Query(`$host_load > 0.5`)
	if err != nil || len(recs) != 1 || recs[0].Member != east {
		t.Fatalf("updated east record not on shard 0: %v, %v", recs, err)
	}
	if err := r.Leave(ctx, west, ""); err != nil {
		t.Fatal(err)
	}
	if shards[1].Size() != 0 {
		t.Fatalf("west shard size after leave = %d", shards[1].Size())
	}
}

func TestRouterQueryMergesSorted(t *testing.T) {
	_, _, r, reg := newRouterFixture(t, 4, nil)
	ctx := context.Background()
	const n = 40
	for i := uint64(1); i <= n; i++ {
		if err := r.Join(ctx, member(i), hostAttrs("Linux", "2.2", float64(i%10)/10), ""); err != nil {
			t.Fatal(err)
		}
	}
	recs, skipped, err := r.QueryPartial(ctx, `defined($host_os_name)`)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped = %d on healthy shards", skipped)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Member.Less(recs[i].Member) {
			t.Fatalf("merge not sorted at %d: %v !< %v", i, recs[i-1].Member, recs[i].Member)
		}
	}
	if got := reg.CounterValue("legion_collection_shard_skips"); got != 0 {
		t.Fatalf("shard_skips = %d", got)
	}
}

// TestRouterDegradesOnDeadShard is the headline acceptance criterion:
// one healthy shard plus one downed shard must yield the healthy
// shard's records without error, within the caller's deadline, and
// bump the skip counter.
func TestRouterDegradesOnDeadShard(t *testing.T) {
	rt := orb.NewRuntime("uva")
	reg := telemetry.NewRegistry()
	rt.SetMetrics(reg)
	healthy := New(rt, nil)
	dead := loid.LOID{Domain: "uva", Class: "Collection", Instance: 999} // never registered
	r := NewRouter(rt, RouterConfig{
		Shards:       []loid.LOID{healthy.LOID(), dead},
		ShardTimeout: 500 * time.Millisecond,
		Route:        func(loid.LOID) int { return 0 }, // members live on the healthy shard
	})
	ctx := context.Background()
	if err := r.Join(ctx, member(1), hostAttrs("Linux", "2.2", 0.1), ""); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	start := time.Now()
	recs, skipped, err := r.QueryPartial(dctx, `defined($host_os_name)`)
	if err != nil {
		t.Fatalf("partial query failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("query blew the caller deadline: %v", elapsed)
	}
	if len(recs) != 1 || recs[0].Member != member(1) {
		t.Fatalf("records = %+v, want just member(1)", recs)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if got := reg.CounterValue("legion_collection_shard_skips"); got != 1 {
		t.Fatalf("legion_collection_shard_skips = %d, want 1", got)
	}

	// The wire-level reply carries the same marker for remote callers.
	res, err := rt.Call(ctx, r.LOID(), proto.MethodQueryCollection, proto.QueryArgs{Query: `defined($host_os_name)`})
	if err != nil {
		t.Fatal(err)
	}
	if reply := res.(proto.QueryReply); reply.SkippedShards != 1 || len(reply.Records) != 1 {
		t.Fatalf("wire reply = %+v", reply)
	}
}

// TestRouterShardTimeout: a shard that hangs past its per-shard
// deadline is skipped; the query still returns within the budget.
func TestRouterShardTimeout(t *testing.T) {
	rt := orb.NewRuntime("uva")
	healthy := New(rt, nil)
	slow := orb.NewServiceObject(rt.Mint("Collection"))
	slow.Handle(proto.MethodQueryCollection, func(ctx context.Context, _ any) (any, error) {
		select {
		case <-time.After(5 * time.Second):
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	rt.Register(slow)
	r := NewRouter(rt, RouterConfig{
		Shards:       []loid.LOID{healthy.LOID(), slow.LOID()},
		ShardTimeout: 100 * time.Millisecond,
		Route:        func(loid.LOID) int { return 0 },
	})
	ctx := context.Background()
	if err := r.Join(ctx, member(1), hostAttrs("Linux", "2.2", 0.1), ""); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	recs, skipped, err := r.QueryPartial(ctx, `defined($host_os_name)`)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hung shard stalled the query: %v", elapsed)
	}
	if len(recs) != 1 || skipped != 1 {
		t.Fatalf("recs = %d, skipped = %d; want 1, 1", len(recs), skipped)
	}
}

func TestRouterAllShardsFailed(t *testing.T) {
	rt := orb.NewRuntime("uva")
	dead1 := loid.LOID{Domain: "uva", Class: "Collection", Instance: 998}
	dead2 := loid.LOID{Domain: "uva", Class: "Collection", Instance: 999}
	r := NewRouter(rt, RouterConfig{Shards: []loid.LOID{dead1, dead2}, ShardTimeout: 200 * time.Millisecond})
	_, _, err := r.QueryPartial(context.Background(), `defined($x)`)
	if !errors.Is(err, ErrAllShardsFailed) {
		t.Fatalf("err = %v, want ErrAllShardsFailed", err)
	}
}

func TestRouterParseErrorIsLocal(t *testing.T) {
	_, _, r, reg := newRouterFixture(t, 2, nil)
	if _, _, err := r.QueryPartial(context.Background(), `$$ not a query`); err == nil {
		t.Fatal("malformed query succeeded")
	}
	if got := reg.CounterValue("legion_collection_shard_skips"); got != 0 {
		t.Fatalf("parse error counted as shard skip: %d", got)
	}
}

func TestRouterBatchSplitAndUpdateOnly(t *testing.T) {
	_, shards, r, _ := newRouterFixture(t, 2, func(cfg *RouterConfig) {
		cfg.Route = RouteByDomain(map[string]int{"east": 0, "west": 1})
	})
	ctx := context.Background()
	east := domainMember("east", 1)
	west := domainMember("west", 1)
	ghost := domainMember("west", 2) // never joined
	reply, err := r.ApplyBatch(ctx, []proto.BatchEntry{
		{Member: east, Attrs: hostAttrs("Linux", "2.2", 0.1)},
		{Member: west, Attrs: hostAttrs("IRIX", "5.3", 0.2)},
		{Member: ghost, Attrs: []attr.Pair{{Name: "host_alive", Value: attr.Bool(false)}}, UpdateOnly: true},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Applied != 2 || reply.Dropped != 1 {
		t.Fatalf("reply = %+v, want Applied 2 Dropped 1", reply)
	}
	if shards[0].Size() != 1 || shards[1].Size() != 1 {
		t.Fatalf("shard sizes = %d, %d", shards[0].Size(), shards[1].Size())
	}
	// The UpdateOnly entry for a present member does apply.
	reply, err = r.ApplyBatch(ctx, []proto.BatchEntry{
		{Member: west, Attrs: []attr.Pair{{Name: "host_alive", Value: attr.Bool(false)}}, UpdateOnly: true},
	}, "")
	if err != nil || reply.Applied != 1 {
		t.Fatalf("flag batch: %+v, %v", reply, err)
	}
	recs, _ := shards[1].Query(`$host_alive == false`)
	if len(recs) != 1 || recs[0].Member != west {
		t.Fatalf("down flag not applied to west: %+v", recs)
	}
}

// TestRouterDedupAcrossShards: a member double-registered out-of-band
// on two shards appears once in merged results.
func TestRouterDedupAcrossShards(t *testing.T) {
	_, shards, r, _ := newRouterFixture(t, 2, nil)
	m := member(7)
	shards[0].Join(m, hostAttrs("Linux", "2.2", 0.1), "")
	shards[1].Join(m, hostAttrs("Linux", "2.2", 0.9), "")
	recs, err := r.QueryCtx(context.Background(), `defined($host_os_name)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("duplicate member merged %d times", len(recs))
	}
}

func TestRouterShardForStable(t *testing.T) {
	_, _, r, _ := newRouterFixture(t, 4, nil)
	for i := uint64(0); i < 50; i++ {
		m := member(i)
		if r.ShardFor(m) != r.ShardFor(m) {
			t.Fatalf("routing not stable for %v", m)
		}
	}
	if len(r.Shards()) != 4 {
		t.Fatalf("Shards() = %d", len(r.Shards()))
	}
}
