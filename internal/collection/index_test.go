package collection

import (
	"fmt"
	"math/rand"
	"testing"

	"legion/internal/attr"
	"legion/internal/orb"
	"legion/internal/telemetry"
)

func fleetAttrs(rng *rand.Rand) []attr.Pair {
	arches := []string{"mips", "sparc", "x86"}
	oses := []string{"IRIX", "Solaris", "Linux"}
	zones := []string{"uva", "sdsc", "mit"}
	return []attr.Pair{
		{Name: "host_alive", Value: attr.Bool(rng.Intn(10) > 0)},
		{Name: "host_arch", Value: attr.String(arches[rng.Intn(len(arches))])},
		{Name: "host_os_name", Value: attr.String(oses[rng.Intn(len(oses))])},
		{Name: "host_zone", Value: attr.String(zones[rng.Intn(len(zones))])},
		{Name: "host_cpus", Value: attr.Int(int64(1 + rng.Intn(8)))},
		{Name: "host_load", Value: attr.Float(rng.Float64())},
	}
}

// TestIndexedQueryEquivalence: for a workload of random records, updates
// and departures, every query must return identical results with the
// index enabled and disabled — the index only prunes, never changes
// semantics.
func TestIndexedQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	indexed := New(orb.NewRuntime("uva"), nil)
	scan := New(orb.NewRuntime("uva"), nil)
	scan.SetIndexedKeys() // disable

	for i := uint64(1); i <= 200; i++ {
		a := fleetAttrs(rng)
		indexed.Join(member(i), a, "")
		scan.Join(member(i), a, "")
	}
	// Churn: updates that move members between buckets, plus leaves.
	for i := 0; i < 100; i++ {
		m := member(uint64(1 + rng.Intn(200)))
		if rng.Intn(4) == 0 {
			indexed.Leave(m, "")
			scan.Leave(m, "")
			continue
		}
		a := fleetAttrs(rng)
		indexed.Update(m, a, "")
		scan.Update(m, a, "")
	}

	queries := []string{
		`$host_alive == true`,
		`$host_arch == "mips"`,
		`$host_arch == "mips" and $host_os_name == "IRIX"`,
		`$host_alive == true and $host_load < 0.5`,
		`$host_zone == "uva" and $host_cpus >= 4`,
		`$host_os_name >= "Linux" and $host_os_name <= "Solaris"`,
		`$host_arch == "vax"`, // empty bucket
		`$host_load < 0.3`,    // unindexed key: full scan on both
		`$host_arch == "x86" or $host_arch == "sparc"`, // or: index bypassed
		`$host_alive == true and not ($host_zone == "mit")`,
		`true`,
	}
	for _, q := range queries {
		want, err := scan.Query(q)
		if err != nil {
			t.Fatalf("scan %q: %v", q, err)
		}
		got, err := indexed.Query(q)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Errorf("%q: indexed %d results, scan %d", q, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i].Member != want[i].Member {
				t.Errorf("%q result %d: indexed %v, scan %v", q, i, got[i].Member, want[i].Member)
			}
		}
	}
}

func TestIndexUsageCounters(t *testing.T) {
	rt := orb.NewRuntime("uva")
	reg := telemetry.NewRegistry()
	rt.SetMetrics(reg)
	c := New(rt, nil)
	c.Join(member(1), hostAttrs("IRIX", "5.3", 0.2), "")

	c.Query(`$host_os_name == "IRIX"`) // indexed
	c.Query(`$host_load < 0.5`)        // no indexed conjunct: scan
	c.Query(`$host_os_name == "IRIX"`) // cache hit + indexed
	if got := reg.CounterValue("legion_collection_query_indexed_total"); got != 2 {
		t.Errorf("indexed = %d, want 2", got)
	}
	if got := reg.CounterValue("legion_collection_query_scans_total"); got != 1 {
		t.Errorf("scans = %d, want 1", got)
	}
	if got := reg.CounterValue("legion_collection_query_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestIndexMaintenance: joins, bucket-moving updates, leaves and prunes
// keep the index consistent with the records.
func TestIndexMaintenance(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	c.Join(member(1), []attr.Pair{{Name: "host_arch", Value: attr.String("mips")}}, "")
	c.Join(member(2), []attr.Pair{{Name: "host_arch", Value: attr.String("mips")}}, "")

	recs, _ := c.Query(`$host_arch == "mips"`)
	if len(recs) != 2 {
		t.Fatalf("initial: %d results", len(recs))
	}
	// Update moves member 1 to another bucket.
	c.Update(member(1), []attr.Pair{{Name: "host_arch", Value: attr.String("x86")}}, "")
	if recs, _ = c.Query(`$host_arch == "mips"`); len(recs) != 1 || recs[0].Member != member(2) {
		t.Fatalf("after update: %+v", recs)
	}
	if recs, _ = c.Query(`$host_arch == "x86"`); len(recs) != 1 || recs[0].Member != member(1) {
		t.Fatalf("x86 bucket: %+v", recs)
	}
	c.Leave(member(2), "")
	if recs, _ = c.Query(`$host_arch == "mips"`); len(recs) != 0 {
		t.Fatalf("after leave: %+v", recs)
	}
	// SetIndexedKeys rebuilds over live records.
	c.SetIndexedKeys("host_arch")
	if recs, _ = c.Query(`$host_arch == "x86"`); len(recs) != 1 {
		t.Fatalf("after rebuild: %+v", recs)
	}
}

// TestIndexNumericEquality: int and float values that compare equal must
// land in one bucket, matching the evaluator's cross-kind numerics.
func TestIndexNumericEquality(t *testing.T) {
	c := New(orb.NewRuntime("uva"), nil)
	c.SetIndexedKeys("host_cpus")
	c.Join(member(1), []attr.Pair{{Name: "host_cpus", Value: attr.Int(1000000)}}, "")
	c.Join(member(2), []attr.Pair{{Name: "host_cpus", Value: attr.Float(1e6)}}, "")
	recs, err := c.Query(fmt.Sprintf(`$host_cpus == %d`, 1000000))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("cross-kind numeric equality: %d results, want 2", len(recs))
	}
}
