// Package collection implements the Legion Collection (paper §3.2).
//
// "The Collection acts as a repository for information describing the
// state of the resources comprising the system. Each record is stored as
// a set of Legion object attributes. Collections provide methods to join
// (with an optional installment of initial descriptive information) and
// update records, thus facilitating a push model for data. ... Users, or
// their agents, obtain information about resources by issuing queries to
// a Collection."
//
// The Figure 4 interface — JoinCollection, LeaveCollection,
// QueryCollection, UpdateCollectionEntry — is exposed both as a Go API
// and as orb methods. Queries are expressions in the package query
// language. The §3.2 security note ("The security facilities of Legion
// authenticate the caller to be sure that it is allowed to update the
// data") is modelled with a pluggable authorizer over per-caller
// credentials.
//
// Function injection — "the ability for users to install code to
// dynamically compute new description information and integrate it with
// the already existing description information for a resource", which the
// paper plans for Network Weather Service predictions — is implemented:
// functions registered with InjectFunc become callable from queries, and
// they receive the record under evaluation (see internal/nws).
package collection

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/query"
	"legion/internal/telemetry"
)

// Op identifies a Collection mutation for authorization decisions.
type Op int

// Collection mutation operations.
const (
	OpJoin Op = iota
	OpLeave
	OpUpdate
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	default:
		return "update"
	}
}

// Authorizer decides whether a caller may mutate a member's record.
type Authorizer func(op Op, member loid.LOID, credential string) error

// Errors returned by Collection operations.
var (
	// ErrUnauthorized reports an authorization failure.
	ErrUnauthorized = errors.New("collection: unauthorized")
	// ErrNotMember reports an operation on an unknown member.
	ErrNotMember = errors.New("collection: not a member")
)

// record is one member's stored description. Records are immutable
// copy-on-write snapshots: mutators build a replacement record and swap
// the pointer under the write lock, so queries capture a consistent
// snapshot with a brief read lock and evaluate entirely outside it, and
// query results share the pre-sorted pairs slice instead of deep-copying
// and re-sorting the attributes per match.
type record struct {
	attrs     map[string]attr.Value
	pairs     []attr.Pair // sorted by name; shared with query results
	updatedAt time.Time
}

// newRecord builds the successor of old (nil for a fresh member) with
// attrs merged in. Neither old nor the result is ever mutated afterwards.
func newRecord(old *record, attrs []attr.Pair, at time.Time) *record {
	n := len(attrs)
	if old != nil {
		n += len(old.attrs)
	}
	m := make(map[string]attr.Value, n)
	if old != nil {
		for k, v := range old.attrs {
			m[k] = v
		}
	}
	for _, p := range attrs {
		m[p.Name] = p.Value
	}
	pairs := make([]attr.Pair, 0, len(m))
	for k, v := range m {
		pairs = append(pairs, attr.Pair{Name: k, Value: v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return &record{attrs: m, pairs: pairs, updatedAt: at}
}

// Collection is a Legion Collection object. Safe for concurrent use.
type Collection struct {
	*orb.ServiceObject

	cache *query.ParseCache // parsed-query LRU; safe for concurrent use

	mu      sync.RWMutex
	records map[loid.LOID]*record
	idx     *attrIndex
	funcs   map[string]query.Func
	auth    Authorizer
	now     func() time.Time

	queries atomic.Int64
	updates atomic.Int64

	met collectionMetrics
}

// collectionMetrics holds the Collection's telemetry handles, cached at
// New.
type collectionMetrics struct {
	spans     *telemetry.SpanLog
	domain    string
	queryTime *telemetry.Histogram
	querySize *telemetry.Histogram
	queryErrs *telemetry.Counter
	evalSkips *telemetry.Counter
	cacheHits *telemetry.Counter
	indexed   *telemetry.Counter
	scans     *telemetry.Counter
}

func newCollectionMetrics(rt *orb.Runtime) collectionMetrics {
	reg := rt.Metrics()
	return collectionMetrics{
		spans:     reg.Spans(),
		domain:    rt.Domain(),
		queryTime: reg.Histogram("legion_collection_query_seconds", telemetry.LatencyBuckets),
		querySize: reg.Histogram("legion_collection_query_results", telemetry.SizeBuckets),
		queryErrs: reg.Counter("legion_collection_query_errors_total"),
		evalSkips: reg.Counter("legion_collection_query_eval_skips"),
		cacheHits: reg.Counter("legion_collection_query_cache_hits_total"),
		indexed:   reg.Counter("legion_collection_query_indexed_total"),
		scans:     reg.Counter("legion_collection_query_scans_total"),
	}
}

// New creates a Collection, registers its orb methods and itself with rt.
// auth may be nil, allowing all mutations.
func New(rt *orb.Runtime, auth Authorizer) *Collection {
	c := &Collection{
		ServiceObject: orb.NewServiceObject(rt.Mint("Collection")),
		cache:         query.NewParseCache(0),
		records:       make(map[loid.LOID]*record),
		idx:           newAttrIndex(DefaultIndexedKeys),
		funcs:         make(map[string]query.Func),
		auth:          auth,
		now:           rt.Clock().Now,
		met:           newCollectionMetrics(rt),
	}
	c.installMethods()
	rt.Register(c)
	return c
}

// SetIndexedKeys replaces the set of indexed attribute keys and rebuilds
// the inverted index over the current records. Passing no keys disables
// the index entirely (every query scans) — the scan-vs-index experiments
// use this as their baseline.
func (c *Collection) SetIndexedKeys(keys ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx = newAttrIndex(keys)
	for member, r := range c.records {
		c.idx.insert(member, r)
	}
}

// SetClock overrides the record-freshness clock.
func (c *Collection) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// InjectFunc installs a user function callable from queries (§3.2
// function injection). Injected functions shadow built-ins. The function
// table is copy-on-write: queries snapshot the current table and keep
// using it outside the lock, so injected functions must be safe for
// concurrent calls.
func (c *Collection) InjectFunc(name string, f query.Func) {
	c.mu.Lock()
	defer c.mu.Unlock()
	funcs := make(map[string]query.Func, len(c.funcs)+1)
	for k, v := range c.funcs {
		funcs[k] = v
	}
	funcs[name] = f
	c.funcs = funcs
}

func (c *Collection) authorize(op Op, member loid.LOID, credential string) error {
	if c.auth == nil {
		return nil
	}
	if err := c.auth(op, member, credential); err != nil {
		return fmt.Errorf("%w: %v", ErrUnauthorized, err)
	}
	return nil
}

// Join registers a member, optionally with initial descriptive
// information.
func (c *Collection) Join(member loid.LOID, attrs []attr.Pair, credential string) error {
	if member.IsNil() {
		return errors.New("collection: nil member LOID")
	}
	if err := c.authorize(OpJoin, member, credential); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.records[member]
	r := newRecord(old, attrs, c.now())
	c.records[member] = r
	c.idx.replace(member, old, r)
	return nil
}

// Leave removes a member's record.
func (c *Collection) Leave(member loid.LOID, credential string) error {
	if err := c.authorize(OpLeave, member, credential); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.records[member]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotMember, member)
	}
	delete(c.records, member)
	c.idx.remove(member, r)
	return nil
}

// Update merges new descriptive information into a member's record — the
// push-model data path.
func (c *Collection) Update(member loid.LOID, attrs []attr.Pair, credential string) error {
	if err := c.authorize(OpUpdate, member, credential); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.records[member]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotMember, member)
	}
	r := newRecord(old, attrs, c.now())
	c.records[member] = r
	c.idx.replace(member, old, r)
	c.updates.Add(1)
	return nil
}

// ApplyBatch applies a coalesced update batch in entry order under a
// single lock acquisition — the server half of the Data Collection
// Daemon's batched push path. Each entry upserts: an absent member is
// joined (authorized as OpJoin), a present one updated (OpUpdate).
// UpdateOnly entries for absent members are dropped rather than joined,
// so a buffered down-flag cannot resurrect a pruned record. Entries the
// authorizer refuses are dropped too; the batch never fails wholesale.
func (c *Collection) ApplyBatch(entries []proto.BatchEntry, credential string) (applied, dropped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, e := range entries {
		if e.Member.IsNil() {
			dropped++
			continue
		}
		old, present := c.records[e.Member]
		op := OpUpdate
		if !present {
			if e.UpdateOnly {
				dropped++
				continue
			}
			op = OpJoin
		}
		if c.auth != nil && c.auth(op, e.Member, credential) != nil {
			dropped++
			continue
		}
		r := newRecord(old, e.Attrs, now)
		c.records[e.Member] = r
		c.idx.replace(e.Member, old, r)
		if present {
			c.updates.Add(1)
		}
		applied++
	}
	return applied, dropped
}

// Record is one query result: a member and its description snapshot.
type Record = proto.CollectionRecord

// Query evaluates a query-language expression against every record and
// returns the matches sorted by member LOID (deterministic order).
// Records with attributes missing from the query simply do not match. A
// record whose evaluation errors (e.g. a bad injected-func value on a
// single host) is skipped — counted in the
// legion_collection_query_eval_skips counter — rather than failing the
// whole query; only a parse error fails the call.
func (c *Collection) Query(src string) ([]Record, error) {
	return c.QueryCtx(context.Background(), src)
}

// QueryCtx is Query with a caller context, so the query span parents
// under any span the context carries (e.g. the ORB server span of a
// remote QueryCollection call).
func (c *Collection) QueryCtx(ctx context.Context, src string) (_ []Record, err error) {
	start := time.Now()
	_, span := c.met.spans.StartIn(ctx, "collection/query", c.met.domain)
	defer func() {
		span.Finish(err)
		c.met.queryTime.ObserveSince(start)
		if err != nil {
			c.met.queryErrs.Inc()
		}
	}()
	e, hit, err := c.cache.Parse(src)
	if err != nil {
		return nil, err
	}
	if hit {
		c.met.cacheHits.Inc()
	}
	terms := query.ConjunctiveTerms(e)

	// Snapshot under a brief read lock: records are immutable
	// copy-on-write values and the function table is swapped wholesale on
	// InjectFunc, so both stay valid after the lock is released and the
	// (possibly slow) evaluation below never stalls Join/Update. When a
	// top-level conjunct hits an indexed key, only the index's candidate
	// set is snapshotted instead of every record.
	type candidate struct {
		member loid.LOID
		rec    *record
	}
	c.mu.RLock()
	c.queries.Add(1)
	funcs := c.funcs
	var snap []candidate
	cands, usedIndex := c.idx.candidates(terms)
	if usedIndex {
		snap = make([]candidate, 0, len(cands))
		for member := range cands {
			if r, ok := c.records[member]; ok {
				snap = append(snap, candidate{member: member, rec: r})
			}
		}
	} else {
		snap = make([]candidate, 0, len(c.records))
		for member, r := range c.records {
			snap = append(snap, candidate{member: member, rec: r})
		}
	}
	c.mu.RUnlock()
	if usedIndex {
		c.met.indexed.Inc()
	} else {
		c.met.scans.Inc()
	}

	var out []Record
	skips := 0
	for _, cand := range snap {
		env := &query.Env{Rec: query.MapRecord(cand.rec.attrs), Funcs: funcs}
		ok, err := query.EvalEnv(e, env)
		if err != nil {
			// One record's bad value must not hide every other resource
			// from the scheduler: skip it and report the rest.
			skips++
			continue
		}
		if !ok {
			continue
		}
		out = append(out, Record{Member: cand.member, Attrs: cand.rec.pairs, UpdatedAt: cand.rec.updatedAt})
	}
	if skips > 0 {
		c.met.evalSkips.Add(int64(skips))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member.Less(out[j].Member) })
	c.met.querySize.Observe(float64(len(out)))
	return out, nil
}

// Size returns the number of member records.
func (c *Collection) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.records)
}

// Stats returns lifetime query and update counts (schedulers use query
// counts; the IRS experiment reproduces the paper's "fewer lookups in the
// Collection" claim with them).
func (c *Collection) Stats() (queries, updates int64) {
	return c.queries.Load(), c.updates.Load()
}

// Prune drops records not updated since the deadline, bounding staleness
// under the push model when a Host dies silently.
func (c *Collection) Prune(olderThan time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for member, r := range c.records {
		if r.updatedAt.Before(olderThan) {
			delete(c.records, member)
			c.idx.remove(member, r)
			n++
		}
	}
	return n
}

func (c *Collection) installMethods() {
	c.Handle(proto.MethodJoinCollection, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.JoinArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want JoinArgs, got %T", arg)
		}
		if err := c.Join(a.Joiner, a.Attrs, a.Credential); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	c.Handle(proto.MethodLeaveCollection, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.LeaveArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want LeaveArgs, got %T", arg)
		}
		if err := c.Leave(a.Leaver, a.Credential); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	c.Handle(proto.MethodUpdateCollectionEntry, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.UpdateArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want UpdateArgs, got %T", arg)
		}
		if err := c.Update(a.Member, a.Attrs, a.Credential); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	c.Handle(proto.MethodUpdateCollectionBatch, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.BatchUpdateArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want BatchUpdateArgs, got %T", arg)
		}
		applied, dropped := c.ApplyBatch(a.Entries, a.Credential)
		return proto.BatchUpdateReply{Applied: applied, Dropped: dropped}, nil
	})
	c.Handle(proto.MethodQueryCollection, func(ctx context.Context, arg any) (any, error) {
		a, ok := arg.(proto.QueryArgs)
		if !ok {
			return nil, fmt.Errorf("collection: want QueryArgs, got %T", arg)
		}
		recs, err := c.QueryCtx(ctx, a.Query)
		if err != nil {
			return nil, err
		}
		// Record aliases proto.CollectionRecord, so the reply reuses the
		// query result without a per-record conversion copy.
		return proto.QueryReply{Records: recs}, nil
	})
}
