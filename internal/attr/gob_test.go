package attr

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestGobRoundTrip(t *testing.T) {
	vals := []Value{
		String("hi"),
		Int(-7),
		Float(3.25),
		Bool(true),
		List(Int(1), String("a"), List(Bool(false))),
		{}, // invalid value survives too
	}
	for _, in := range vals {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(in); err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		var out Value
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if in.IsValid() != out.IsValid() {
			t.Errorf("validity changed for %v", in)
		}
		if in.IsValid() && !in.Equal(out) {
			t.Errorf("round trip %v -> %v", in, out)
		}
		if in.Kind() != out.Kind() {
			t.Errorf("kind changed: %v -> %v", in.Kind(), out.Kind())
		}
	}
}

func TestGobPairSlice(t *testing.T) {
	in := []Pair{
		{Name: "os", Value: String("IRIX")},
		{Name: "load", Value: Float(0.25)},
		{Name: "vaults", Value: Strings("v1", "v2")},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	var out []Pair
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if out[i].Name != in[i].Name || !out[i].Value.Equal(in[i].Value) {
			t.Errorf("pair %d: %v -> %v", i, in[i], out[i])
		}
	}
}

func TestGobDecodeGarbage(t *testing.T) {
	var v Value
	if err := v.GobDecode([]byte("not gob data")); err == nil {
		t.Error("garbage decoded")
	}
}
