package attr

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireValue is the gob-visible form of Value. Value keeps its fields
// unexported for immutability, so it implements GobEncoder/GobDecoder by
// round-tripping through this struct (attribute snapshots cross the wire
// in Collection updates and Host information reports).
type wireValue struct {
	Kind Kind
	S    string
	I    int64
	F    float64
	B    bool
	L    []Value
}

// GobEncode implements gob.GobEncoder.
func (v Value) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	w := wireValue{Kind: v.kind, S: v.s, I: v.i, F: v.f, B: v.b, L: v.l}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("attr: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	var w wireValue
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("attr: gob decode: %w", err)
	}
	if w.Kind < KindInvalid || w.Kind > KindList {
		return fmt.Errorf("attr: gob decode: invalid kind %d", int(w.Kind))
	}
	v.kind, v.s, v.i, v.f, v.b, v.l = w.Kind, w.S, w.I, w.F, w.B, w.L
	return nil
}
