package attr

import (
	"fmt"

	"legion/internal/wire"
)

// maxWireDepth bounds list nesting on decode, mirroring the recursion
// limit the gob decoder enforces: a hostile frame must not be able to
// exhaust the stack with a deeply nested list.
const maxWireDepth = 32

// AppendWire appends the Value in the ORB's binary wire format: a kind
// byte followed by the kind's payload.
func (v Value) AppendWire(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindString:
		b = wire.AppendString(b, v.s)
	case KindInt:
		b = wire.AppendVarint(b, v.i)
	case KindFloat:
		b = wire.AppendFloat64(b, v.f)
	case KindBool:
		b = wire.AppendBool(b, v.b)
	case KindList:
		b = wire.AppendUvarint(b, uint64(len(v.l)))
		for i := range v.l {
			b = v.l[i].AppendWire(b)
		}
	}
	return b
}

// DecodeWire consumes a Value encoded by AppendWire. String payloads are
// interned — attribute values repeat across a fleet ("linux", "x86_64",
// zone names) almost as much as attribute names do.
func (v *Value) DecodeWire(r *wire.Reader) { v.decodeWire(r, 0) }

func (v *Value) decodeWire(r *wire.Reader, depth int) {
	if r.Err != nil {
		*v = Value{}
		return
	}
	if depth > maxWireDepth {
		r.Err = fmt.Errorf("attr: wire decode: list nesting exceeds %d", maxWireDepth)
		*v = Value{}
		return
	}
	if len(r.B) < 1 {
		r.Err = wire.ErrTruncated
		*v = Value{}
		return
	}
	k := Kind(r.B[0])
	r.B = r.B[1:]
	*v = Value{kind: k}
	switch k {
	case KindInvalid:
	case KindString:
		v.s = r.Sym()
	case KindInt:
		v.i = r.Varint()
	case KindFloat:
		v.f = r.Float64()
	case KindBool:
		v.b = r.Bool()
	case KindList:
		n := r.Len()
		if r.Err != nil || n == 0 {
			return
		}
		v.l = make([]Value, n)
		for i := range v.l {
			v.l[i].decodeWire(r, depth+1)
		}
	default:
		r.Err = fmt.Errorf("attr: wire decode: invalid kind %d", int(k))
		*v = Value{}
	}
}

// AppendWirePairs appends a length-prefixed Pair slice.
func AppendWirePairs(b []byte, ps []Pair) []byte {
	b = wire.AppendUvarint(b, uint64(len(ps)))
	for i := range ps {
		b = wire.AppendString(b, ps[i].Name)
		b = ps[i].Value.AppendWire(b)
	}
	return b
}

// DecodeWirePairs consumes a Pair slice, reusing reuse's capacity. Pair
// names are interned.
func DecodeWirePairs(r *wire.Reader, reuse []Pair) []Pair {
	n := r.Len()
	if r.Err != nil || n == 0 {
		return nil
	}
	var out []Pair
	if cap(reuse) >= n {
		out = reuse[:n]
	} else {
		out = make([]Pair, n)
	}
	for i := range out {
		out[i].Name = r.Sym()
		out[i].Value.DecodeWire(r)
	}
	return out
}
