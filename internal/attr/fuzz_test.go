package attr

import (
	"bytes"
	"testing"
)

// FuzzDecode asserts the gob decoder is total over arbitrary bytes —
// attribute snapshots arrive off the wire from other domains, so a
// malformed or hostile payload must produce an error, never a panic or
// an out-of-range Value — and that whatever it accepts survives an
// encode/decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	for _, v := range []Value{
		{},
		String(""),
		String("Linux"),
		Int(-42),
		Float(0.25),
		Bool(true),
		List(),
		Strings("v1", "v2"),
		List(Int(1), String("x"), List(Bool(false), Float(3.14))),
	} {
		enc, err := v.GobEncode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var v Value
		if err := v.GobDecode(data); err != nil {
			return
		}
		if k := v.Kind(); k < KindInvalid || k > KindList {
			t.Fatalf("decoded out-of-range kind %d", int(k))
		}
		reenc, err := v.GobEncode()
		if err != nil {
			t.Fatalf("re-encode of accepted value failed: %v", err)
		}
		var v2 Value
		if err := v2.GobDecode(reenc); err != nil {
			t.Fatalf("decode of re-encoded value failed: %v", err)
		}
		if !v.Equal(v2) {
			t.Fatalf("round trip changed value: %s != %s", v, v2)
		}
		// String() must be total too — records get rendered in traces.
		_ = v.String()
		_ = bytes.Equal(data, reenc) // representations may differ; only values must match
	})
}

// TestDecodeRejectsInvalidKind pins the hardening: a wire value whose
// Kind is outside the enum must be refused, not stored.
func TestDecodeRejectsInvalidKind(t *testing.T) {
	good := String("x")
	enc, err := good.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var v Value
	if err := v.GobDecode(enc); err != nil {
		t.Fatalf("control decode failed: %v", err)
	}

	for _, k := range []Kind{Kind(-1), KindList + 1, Kind(1000)} {
		bad := Value{kind: k, s: "x"}
		enc, err := bad.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		var out Value
		if err := out.GobDecode(enc); err == nil {
			t.Errorf("kind %d: decode accepted out-of-range kind", int(k))
		}
	}
}
