package attr

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if v := String("x"); v.Kind() != KindString || v.Str() != "x" {
		t.Errorf("String: %v", v)
	}
	if v := Int(7); v.Kind() != KindInt || v.IntVal() != 7 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.FloatVal() != 2.5 {
		t.Errorf("Float: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.BoolVal() {
		t.Errorf("Bool: %v", v)
	}
	l := List(Int(1), String("a"))
	if l.Kind() != KindList || l.Len() != 2 || l.At(1).Str() != "a" {
		t.Errorf("List: %v", l)
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value should be invalid")
	}
}

func TestStringsHelper(t *testing.T) {
	v := Strings("a", "b")
	if v.Len() != 2 || v.At(0).Str() != "a" || v.At(1).Str() != "b" {
		t.Errorf("Strings: %v", v)
	}
}

func TestListImmutability(t *testing.T) {
	src := []Value{Int(1), Int(2)}
	v := List(src...)
	src[0] = Int(99)
	if v.At(0).IntVal() != 1 {
		t.Error("List aliases caller slice")
	}
	got := v.ListVal()
	got[1] = Int(99)
	if v.At(1).IntVal() != 2 {
		t.Error("ListVal aliases internal slice")
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Errorf("Int.AsFloat = %v, %v", f, ok)
	}
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Errorf("Float.AsFloat = %v, %v", f, ok)
	}
	if _, ok := String("3").AsFloat(); ok {
		t.Error("String.AsFloat should fail")
	}
	if _, ok := Bool(true).AsFloat(); ok {
		t.Error("Bool.AsFloat should fail")
	}
}

func TestEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) || !Float(3.0).Equal(Int(3)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not equal String(\"3\")")
	}
}

func TestEqualLists(t *testing.T) {
	a := List(Int(1), String("x"))
	b := List(Float(1), String("x"))
	if !a.Equal(b) {
		t.Error("lists with numerically equal elements should be equal")
	}
	if a.Equal(List(Int(1))) {
		t.Error("different-length lists equal")
	}
	if a.Equal(List(Int(1), String("y"))) {
		t.Error("different lists equal")
	}
}

func TestEqualProperty(t *testing.T) {
	// Equal is reflexive and symmetric for generated scalars.
	f := func(s string, i int64, fl float64, b bool) bool {
		vals := []Value{String(s), Int(i), Float(fl), Bool(b)}
		for _, v := range vals {
			if fl != fl { // skip NaN: NaN != NaN by design
				continue
			}
			if !v.Equal(v) {
				return false
			}
			for _, w := range vals {
				if v.Equal(w) != w.Equal(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		`"hi"`:      String("hi"),
		"42":        Int(42),
		"2.5":       Float(2.5),
		"true":      Bool(true),
		`[1, "a"]`:  List(Int(1), String("a")),
		"<invalid>": {},
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSetBasicOps(t *testing.T) {
	s := NewSet(Pair{"a", Int(1)}, Pair{"b", String("x")})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.Get("a"); !ok || v.IntVal() != 1 {
		t.Errorf("Get(a) = %v, %v", v, ok)
	}
	s.Set("a", Int(2))
	if v, _ := s.Get("a"); v.IntVal() != 2 {
		t.Errorf("after Set, Get(a) = %v", v)
	}
	s.Delete("b")
	if _, ok := s.Get("b"); ok {
		t.Error("Delete failed")
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
}

func TestSetMergeAndSnapshot(t *testing.T) {
	s := NewSet(Pair{"z", Int(1)}, Pair{"a", Int(2)})
	s.Merge([]Pair{{"m", Int(3)}, {"z", Int(9)}})
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Snapshot is sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Errorf("snapshot not sorted: %v", snap)
		}
	}
	m := FromPairs(snap)
	if m["z"].IntVal() != 9 || m["m"].IntVal() != 3 {
		t.Errorf("merge result wrong: %v", snap)
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(Pair{"a", Int(1)})
	c := s.Clone()
	s.Set("a", Int(2))
	if v, _ := c.Get("a"); v.IntVal() != 1 {
		t.Error("clone not independent")
	}
}

func TestSetLookupAdapter(t *testing.T) {
	s := NewSet(Pair{"a", Int(1)})
	if v, ok := s.Lookup("a"); !ok || v.IntVal() != 1 {
		t.Errorf("Lookup = %v, %v", v, ok)
	}
}

func TestSetConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Set("k", Int(int64(i)))
				s.Get("k")
				s.Snapshot()
				s.Merge([]Pair{{"m", Int(int64(g))}})
			}
		}(g)
	}
	wg.Wait()
	if _, ok := s.Get("k"); !ok {
		t.Error("k missing after concurrent writes")
	}
}

func TestAtPanicsOnNonList(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Int(1).At(0)
}
