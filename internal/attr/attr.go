// Package attr implements the extensible attribute databases carried by
// all Legion objects.
//
// The paper (§3.1): "All Legion objects include an extensible attribute
// database, the contents of which are determined by the type of the
// object. Host objects populate their attributes with information
// describing their current state, including architecture, operating
// system, load, available memory, etc."
//
// Attributes are (name, value) pairs. Values are dynamically typed:
// string, int64, float64, bool, or a list of values. The Collection stores
// one attribute Set per resource record, and the query language (package
// query) evaluates expressions over a Set, referring to attributes as
// $name.
package attr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind enumerates the dynamic types an attribute Value can hold.
type Kind int

// The attribute value kinds.
const (
	KindInvalid Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
	KindList
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindList:
		return "list"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value. The zero Value is invalid.
// Values are immutable once constructed.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
	l    []Value
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int constructs an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float constructs a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool constructs a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// List constructs a list Value from the given elements. The slice is
// copied.
func List(elems ...Value) Value {
	l := make([]Value, len(elems))
	copy(l, elems)
	return Value{kind: KindList, l: l}
}

// Strings constructs a list Value of strings; a convenience for common
// attributes such as the list of compatible vaults or accepted domains.
func Strings(ss ...string) Value {
	l := make([]Value, len(ss))
	for i, s := range ss {
		l[i] = String(s)
	}
	return Value{kind: KindList, l: l}
}

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds any type at all.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// IntVal returns the integer payload; it is only meaningful for KindInt.
func (v Value) IntVal() int64 { return v.i }

// FloatVal returns the float payload; it is only meaningful for KindFloat.
func (v Value) FloatVal() float64 { return v.f }

// BoolVal returns the bool payload; it is only meaningful for KindBool.
func (v Value) BoolVal() bool { return v.b }

// ListVal returns a copy of the list payload; it is only meaningful for
// KindList.
func (v Value) ListVal() []Value {
	out := make([]Value, len(v.l))
	copy(out, v.l)
	return out
}

// Len returns the list length for KindList and 0 otherwise.
func (v Value) Len() int { return len(v.l) }

// At returns the i'th list element. It panics if v is not a list or the
// index is out of range, matching slice semantics.
func (v Value) At(i int) Value {
	if v.kind != KindList {
		panic("attr: At on non-list value")
	}
	return v.l[i]
}

// AsFloat coerces numeric values to float64: ints widen, floats pass
// through. ok is false for every other kind. This is the numeric-
// comparison coercion used by the query evaluator.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Equal reports deep semantic equality. Numeric values compare across
// int/float kinds (Int(3) equals Float(3.0)), mirroring the query
// language's comparison semantics.
func (v Value) Equal(o Value) bool {
	if vf, ok := v.AsFloat(); ok {
		of, ook := o.AsFloat()
		return ook && vf == of
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	case KindList:
		if len(v.l) != len(o.l) {
			return false
		}
		for i := range v.l {
			if !v.l[i].Equal(o.l[i]) {
				return false
			}
		}
		return true
	default:
		return v.kind == o.kind
	}
}

// String renders the value for traces and error messages. Strings are
// quoted; lists are bracketed.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return fmt.Sprintf("%q", v.s)
	case KindInt:
		return fmt.Sprintf("%d", v.i)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindBool:
		return fmt.Sprintf("%t", v.b)
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return "<invalid>"
	}
}

// Pair is a single (name, value) attribute, the unit the paper's
// Collection interface traffics in (LinkedList<Uval_ObjAttribute>).
type Pair struct {
	Name  string
	Value Value
}

// Set is a mutable attribute database. It is safe for concurrent use.
// The zero Set must not be used; call NewSet.
type Set struct {
	mu sync.RWMutex
	m  map[string]Value
}

// NewSet returns an empty attribute Set, optionally populated with the
// given pairs (later pairs overwrite earlier ones of the same name).
func NewSet(pairs ...Pair) *Set {
	s := &Set{m: make(map[string]Value, len(pairs))}
	for _, p := range pairs {
		s.m[p.Name] = p.Value
	}
	return s
}

// Get returns the named attribute and whether it is present.
func (s *Set) Get(name string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[name]
	return v, ok
}

// Set stores an attribute, overwriting any previous value of that name.
func (s *Set) Set(name string, v Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[name] = v
}

// Delete removes the named attribute if present.
func (s *Set) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, name)
}

// Len returns the number of attributes in the set.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Merge overwrites attributes in s with every pair in the given list. It
// is the update operation Hosts use when repopulating their attributes and
// Collections use for UpdateCollectionEntry.
func (s *Set) Merge(pairs []Pair) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range pairs {
		s.m[p.Name] = p.Value
	}
}

// Snapshot returns the attributes as a sorted, immutable slice of pairs.
// Snapshots are what Hosts push to Collections and what query evaluation
// runs over; sorting makes downstream iteration deterministic.
func (s *Set) Snapshot() []Pair {
	s.mu.RLock()
	pairs := make([]Pair, 0, len(s.m))
	for k, v := range s.m {
		pairs = append(pairs, Pair{Name: k, Value: v})
	}
	s.mu.RUnlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return pairs
}

// Clone returns an independent deep copy of the set.
func (s *Set) Clone() *Set {
	return NewSet(s.Snapshot()...)
}

// Lookup adapts the Set to the query evaluator's attribute-resolution
// interface: it returns the value bound to $name.
func (s *Set) Lookup(name string) (Value, bool) { return s.Get(name) }

// FromPairs builds a read-only lookup map from a snapshot, for evaluating
// queries over records that are no longer backed by a live Set.
func FromPairs(pairs []Pair) map[string]Value {
	m := make(map[string]Value, len(pairs))
	for _, p := range pairs {
		m[p.Name] = p.Value
	}
	return m
}
