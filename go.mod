module legion

go 1.22
